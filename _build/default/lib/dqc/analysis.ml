open Circuit

type verdict =
  | Exact_certified
  | Exact_observed
  | Approximate of float
  | Untransformable of string

type report = {
  num_qubits : int;
  data_qubits : int;
  answer_qubits : int;
  ancilla_qubits : int;
  interaction_edges : (int * int) list;
  cyclic : bool;
  iterations : int option;
  conditioned : int option;
  violations : int option;
  qubit_savings : int option;
  min_exact_slots : int option;
  verdict : verdict;
}

let analyze ?(mct = false) ?(check_equivalence = true) c =
  let count role = List.length (Circ.qubits_with_role c role) in
  let interaction_edges = Interaction.edges c in
  let cyclic =
    match Interaction.iteration_order c with
    | (_ : int list) -> false
    | exception Interaction.Cyclic _ -> true
  in
  let base =
    {
      num_qubits = Circ.num_qubits c;
      data_qubits = count Circ.Data;
      answer_qubits = count Circ.Answer;
      ancilla_qubits = count Circ.Ancilla;
      interaction_edges;
      cyclic;
      iterations = None;
      conditioned = None;
      violations = None;
      qubit_savings = None;
      min_exact_slots = None;
      verdict = Untransformable "not analyzed";
    }
  in
  let min_exact_slots =
    if check_equivalence && Circ.num_qubits c <= 10 then
      Multi_transform.min_exact_slots ~mct c
    else None
  in
  let base = { base with min_exact_slots } in
  (* certified path first: a sound schedule settles the question *)
  match Transform.transform ~mode:`Sound ~mct c with
  | sound ->
      {
        base with
        iterations = Some (List.length sound.iteration_order);
        conditioned = Some (Transform.conditioned_count sound);
        violations = Some 0;
        qubit_savings =
          Some (Circ.num_qubits c - Circ.num_qubits sound.circuit);
        verdict = Exact_certified;
      }
  | exception Interaction.Cyclic _ ->
      { base with verdict = Untransformable "cyclic data-qubit interaction" }
  | exception Transform.Not_transformable _ -> (
      match Transform.transform ~mode:`Algorithm1 ~mct c with
      | r ->
          let verdict =
            if check_equivalence && Circ.num_qubits c <= 12 then begin
              let tv = Equivalence.tv_distance c r in
              if tv <= 1e-9 then Exact_observed else Approximate tv
            end
            else Approximate Float.nan
          in
          {
            base with
            iterations = Some (List.length r.iteration_order);
            conditioned = Some (Transform.conditioned_count r);
            violations = Some (List.length r.violations);
            qubit_savings = Some (Circ.num_qubits c - Circ.num_qubits r.circuit);
            verdict;
          }
      | exception Transform.Not_transformable msg ->
          { base with verdict = Untransformable msg })

let verdict_to_string = function
  | Exact_certified -> "exact (certified by sound scheduling)"
  | Exact_observed -> "exact (observed; Algorithm 1 reorders unsoundly)"
  | Approximate tv ->
      if Float.is_nan tv then "approximate (too large for exact check)"
      else Printf.sprintf "approximate (TV distance %.4f)" tv
  | Untransformable msg -> "untransformable: " ^ msg

let pp fmt r =
  Format.fprintf fmt
    "@[<v>qubits: %d (%d data, %d answer, %d ancilla)@,\
     data-qubit interactions: %d edge(s)%s@,"
    r.num_qubits r.data_qubits r.answer_qubits r.ancilla_qubits
    (List.length r.interaction_edges)
    (if r.cyclic then " - CYCLIC" else "");
  (match (r.iterations, r.conditioned, r.violations) with
  | Some iters, Some cc, Some v ->
      Format.fprintf fmt
        "iterations: %d, conditioned gates: %d, unsound reorderings: %d@,"
        iters cc v
  | _, _, _ -> ());
  (match r.qubit_savings with
  | Some s -> Format.fprintf fmt "qubit savings: %d@," s
  | None -> ());
  (match r.min_exact_slots with
  | Some k -> Format.fprintf fmt "provably exact from %d data slot(s)@," k
  | None -> ());
  Format.fprintf fmt "verdict: %s@]" (verdict_to_string r.verdict)

let to_string r = Format.asprintf "%a" pp r
