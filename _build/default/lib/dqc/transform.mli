open Circuit

(** The paper's Algorithm 1: transform an n-qubit traditional circuit
    into a dynamic quantum circuit over one physical data qubit plus
    the answer qubits, using mid-circuit measurement, active reset and
    classically controlled gates.

    The input must be measurement-free and contain only gates with at
    most one quantum control (run {!Decompose.Pass.substitute_toffoli}
    first — choosing the Barenco or ancilla-unrolled netlist there is
    exactly the paper's dynamic-1 / dynamic-2 choice).

    {2 Soundness modes}

    Algorithm 1 scans the input in program order each iteration and
    emits every gate whose operands match the current work qubit,
    {e without checking} that skipped-over pending gates commute with
    it.  For circuits whose data qubits only interact with answer
    qubits (BV, Toffoli-free DJ) every such reordering happens to be
    sound and the DQC is exactly equivalent.  When data qubits interact
    with each other (the CX sandwich of Eqn 1, the parity CXs of
    Eqn 3), the trailing Hadamard of a DJ data qubit is emitted past a
    pending non-commuting CX: the resulting DQC is {e not} exactly
    equivalent, which is the real source of the accuracy loss the paper
    plots in Fig 7 (its simulator is noiseless).

    - [`Algorithm1] reproduces the paper faithfully and records each
      unsound emission as a {!violation};
    - [`Sound] only emits a gate once every earlier pending gate
      commutes with it, raising {!Not_transformable} when the circuit
      cannot be scheduled soundly — useful as a static certificate that
      a DQC is exactly equivalent. *)

exception Not_transformable of string

(** An emission that jumped over earlier, non-commuting pending gates. *)
type violation = {
  iteration : int;  (** index in the iteration order *)
  emitted : Instruction.t;  (** gate (input indexing) that was emitted *)
  jumped_over : Instruction.t list;
      (** earlier pending gates that do not commute with it *)
}

type result = {
  circuit : Circ.t;  (** the DQC: qubit 0 is the physical data qubit *)
  data_bit : (int * int) list;
      (** input data qubit -> classical register bit *)
  answer_phys : (int * int) list;  (** input answer qubit -> DQC qubit *)
  iteration_order : int list;  (** work qubits in iteration order *)
  violations : violation list;  (** empty in [`Sound] mode *)
}

(** [transform ?mode ?mct c] runs the transformation ([mode] defaults
    to [`Algorithm1]).  With [~mct:true] gates with two or more quantum
    controls are realized {e directly}: controls on measured data
    qubits become a conjunctive classical condition and live controls
    stay quantum — the dynamic multiple-control Toffoli realization the
    paper lists as future work.  With the default [~mct:false] such
    gates are rejected (decompose them first, as the paper does).
    @raise Not_transformable when a gate can never be emitted (e.g. a
    quantum gate targets an already-measured data qubit, an unmeasured
    ancilla would need to serve as a classical control, a multi-control
    gate was not decomposed, or [`Sound] scheduling gets stuck).
    @raise Interaction.Cyclic when Case-2 ordering is impossible. *)
val transform :
  ?mode:[ `Algorithm1 | `Sound ] ->
  ?mct:bool ->
  ?order:int list ->
  Circ.t ->
  result
(** [?order] overrides the default (smallest-index-first topological)
    iteration order; it must be a permutation of the work qubits
    respecting every Case-2 edge, else {!Not_transformable}. *)

(** Count of classically controlled gates in the result — the metric
    the paper uses to contrast dynamic-1 and dynamic-2. *)
val conditioned_count : result -> int
