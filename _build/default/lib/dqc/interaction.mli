open Circuit

(** Data-qubit interaction analysis — the paper's Case 2.

    A 2-qubit gate between work qubits (data or ancilla) forces its
    control's iteration before its target's iteration, because the
    control must already be measured for the gate to become classically
    controlled.  The iteration order is any topological order of the
    resulting digraph; ties are broken by ascending qubit index so the
    order is deterministic. *)

exception Cyclic of int list
(** Raised with the offending qubits when the interaction digraph has a
    cycle: the circuit cannot be dynamically transformed with this
    decomposition. *)

(** Edges (control, target) between work qubits, deduplicated. *)
val edges : Circ.t -> (int * int) list

(** Iteration order over the work qubits (data and ancilla).
    @raise Cyclic (see above). *)
val iteration_order : Circ.t -> int list

(** Graphviz rendering of the interaction digraph (work qubits as
    nodes, Case-2 edges as arrows, answers omitted). *)
val to_dot : Circ.t -> string
