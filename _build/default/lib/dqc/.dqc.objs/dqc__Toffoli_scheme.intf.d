lib/dqc/toffoli_scheme.mli: Circ Circuit Decompose Transform
