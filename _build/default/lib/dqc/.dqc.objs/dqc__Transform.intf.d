lib/dqc/transform.mli: Circ Circuit Instruction
