lib/dqc/interaction.ml: Array Buffer Circ Circuit Hashtbl Instruction List Printf
