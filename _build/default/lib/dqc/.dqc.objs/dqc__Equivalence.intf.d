lib/dqc/equivalence.mli: Circ Circuit Sim Transform
