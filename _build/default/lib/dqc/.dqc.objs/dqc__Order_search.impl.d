lib/dqc/order_search.ml: Circ Circuit Equivalence Interaction List Transform
