lib/dqc/order_search.mli: Circ Circuit
