lib/dqc/pipeline.mli: Circ Circuit Format Toffoli_scheme
