lib/dqc/pipeline.ml: Circ Circuit Decompose Equivalence Format List Metrics Multi_transform Printf Toffoli_scheme Transform Transpile
