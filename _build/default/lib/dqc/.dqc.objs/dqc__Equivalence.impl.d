lib/dqc/equivalence.ml: Circuit List Sim Transform
