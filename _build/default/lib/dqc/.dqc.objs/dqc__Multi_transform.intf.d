lib/dqc/multi_transform.mli: Circ Circuit Sim Transform
