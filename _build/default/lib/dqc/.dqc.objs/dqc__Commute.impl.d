lib/dqc/commute.ml: Circuit Gate Instruction Linalg List Sim
