lib/dqc/multi_transform.ml: Array Circ Circuit Commute Instruction Interaction List Option Printf Sim Transform
