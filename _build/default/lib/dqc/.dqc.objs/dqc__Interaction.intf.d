lib/dqc/interaction.mli: Circ Circuit
