lib/dqc/transform.ml: Array Circ Circuit Commute Instruction Interaction List Printf Seq
