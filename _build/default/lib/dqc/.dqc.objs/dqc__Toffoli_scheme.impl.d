lib/dqc/toffoli_scheme.ml: Decompose Transform
