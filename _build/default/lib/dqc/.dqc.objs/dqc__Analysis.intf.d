lib/dqc/analysis.mli: Circ Circuit Format
