lib/dqc/commute.mli: Circuit Instruction
