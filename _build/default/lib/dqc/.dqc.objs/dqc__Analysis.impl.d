lib/dqc/analysis.ml: Circ Circuit Equivalence Float Format Interaction List Multi_transform Printf Transform
