open Circuit

(** Commutation oracle between instructions, used by the DQC scheduler
    to decide whether moving a gate ahead of pending ones is sound.

    Structural fast paths (disjoint supports, shared-control gates,
    diagonal-diagonal pairs) avoid matrix work; everything else falls
    back to computing the commutator on the joint support. *)

(** [unitary_apps a b] decides commutation of two unitary applications
    exactly (up to 1e-9 on the commutator norm). *)
val unitary_apps : Instruction.app -> Instruction.app -> bool

(** [instrs a b] is a sound (possibly conservative) commutation test
    for arbitrary instructions.  Classically conditioned gates only
    read the register, so two conditioned gates (or a conditioned and
    a plain gate) commute exactly when their unitary applications do;
    measurements and resets commute with anything only on disjoint
    qubit and bit supports. *)
val instrs : Instruction.t -> Instruction.t -> bool
