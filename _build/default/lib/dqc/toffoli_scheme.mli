open Circuit

(** The paper's two dynamic realizations of Toffoli-based circuits:

    - {e dynamic-1}: substitute every Toffoli with the Barenco
      CV/CV†/CX netlist (Eqn 1) and transform — Eqn 2;
    - {e dynamic-2}: substitute with the ancilla-unrolled netlist
      (Eqn 3) and transform — Eqn 4.  The default ancilla sharing is
      [`Per_target] (Lemma 1: one extra iteration per target). *)

type t =
  | Traditional  (** no transformation; returned unchanged *)
  | Dynamic_1
  | Dynamic_2
  | Dynamic_2_shared of Decompose.Pass.sharing
      (** dynamic-2 with an explicit ancilla-sharing policy *)
  | Direct_mct
      (** no decomposition: multi-control gates become conjunctively
          conditioned gates ([Transform.transform ~mct:true]) — the
          dynamic multiple-control Toffoli realization of the paper's
          future work *)

val to_string : t -> string

(** The substitution pass of the scheme (identity for [Traditional]). *)
val prepare : t -> Circ.t -> Circ.t

(** [transform ?mode scheme c] = prepare then {!Transform.transform}.
    @raise Invalid_argument on [Traditional]. *)
val transform :
  ?mode:[ `Algorithm1 | `Sound ] -> t -> Circ.t -> Transform.result
