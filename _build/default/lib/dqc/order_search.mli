open Circuit

(** Exhaustive search over legal iteration orders.

    The paper fixes no iteration order beyond the Case-2 constraints;
    different topological orders of the interaction digraph yield
    different unsound-reordering counts and accuracies.  This module
    enumerates every legal order (capped) and scores the resulting
    DQCs — an ablation the paper does not attempt. *)

type candidate = {
  order : int list;
  violations : int;
  conditioned : int;
  tv : float;  (** exact TV distance to the traditional circuit *)
}

(** [search ?mct ?limit c] transforms [c] under every legal iteration
    order (at most [limit], default 720) and returns the candidates
    sorted by (tv, violations).  The circuit must satisfy
    {!Transform.transform}'s preconditions and be small enough for
    exact evaluation.
    @raise Interaction.Cyclic when no legal order exists. *)
val search : ?mct:bool -> ?limit:int -> Circ.t -> candidate list

(** Best candidate of {!search} (head of the sorted list).
    @raise Invalid_argument when the search is empty. *)
val best : ?mct:bool -> ?limit:int -> Circ.t -> candidate
