open Circuit

exception Cyclic of int list

let is_work c q =
  match Circ.role c q with
  | Circ.Data | Circ.Ancilla -> true
  | Circ.Answer -> false

let edges c =
  let collect acc (i : Instruction.t) =
    match i with
    | Unitary { controls; target; _ } when is_work c target ->
        List.fold_left
          (fun acc ctl -> if is_work c ctl then (ctl, target) :: acc else acc)
          acc controls
    | Unitary _ | Conditioned _ | Measure _ | Reset _ | Barrier _ -> acc
  in
  List.fold_left collect [] (Circ.instructions c)
  |> List.sort_uniq compare

(* Kahn's algorithm, always picking the smallest available qubit. *)
let iteration_order c =
  let work =
    List.filter (is_work c)
      (List.init (Circ.num_qubits c) (fun q -> q))
  in
  let es = edges c in
  let indegree = Hashtbl.create 8 in
  List.iter (fun q -> Hashtbl.replace indegree q 0) work;
  List.iter
    (fun (_, t) ->
      Hashtbl.replace indegree t (1 + Hashtbl.find indegree t))
    es;
  let rec pick remaining order =
    match remaining with
    | [] -> List.rev order
    | _ -> (
        let available =
          List.filter (fun q -> Hashtbl.find indegree q = 0) remaining
        in
        match available with
        | [] -> raise (Cyclic remaining)
        | q :: _ ->
            let remaining = List.filter (( <> ) q) remaining in
            List.iter
              (fun (s, t) ->
                if s = q then
                  Hashtbl.replace indegree t (Hashtbl.find indegree t - 1))
              es;
            pick remaining (q :: order))
  in
  pick work []

let to_dot c =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph interaction {\n";
  List.iteri
    (fun q role ->
      match role with
      | Circ.Data -> Buffer.add_string buf (Printf.sprintf "  q%d;\n" q)
      | Circ.Ancilla ->
          Buffer.add_string buf
            (Printf.sprintf "  q%d [shape=diamond];\n" q)
      | Circ.Answer -> ())
    (Array.to_list (Circ.roles c));
  List.iter
    (fun (s, t) -> Buffer.add_string buf (Printf.sprintf "  q%d -> q%d;\n" s t))
    (edges c);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
