(* Iterative quantum phase estimation on two qubits.

   The paper's Section III contrasts the BV dynamic circuit (whose
   iterations can be permuted freely) with QPE (whose iterations are
   gate-dependent: each phase correction is conditioned on every
   earlier measured digit).  This example builds both forms, shows the
   feed-forward structure, and demonstrates that the two-qubit
   iterative circuit reproduces the traditional distribution exactly —
   for every phase, not just exactly-representable ones.

   Run with: dune exec examples/qpe_dynamic.exe -- [phase] [bits] *)

let () =
  let phase =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.3
  in
  let bits =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4
  in
  let traditional = Algorithms.Qpe.traditional ~bits ~phase in
  let iterative = Algorithms.Qpe.iterative ~bits ~phase in
  Printf.printf "Estimating phase %.6f with %d bits\n\n" phase bits;
  Printf.printf "traditional QPE: %d qubits, %d gates, depth %d\n"
    (Circuit.Circ.num_qubits traditional)
    (Circuit.Metrics.gate_count traditional)
    (Circuit.Metrics.traditional_depth traditional);
  Printf.printf "iterative QPE:   %d qubits, %d gates, depth %d\n\n"
    (Circuit.Circ.num_qubits iterative)
    (Circuit.Metrics.gate_count iterative)
    (Circuit.Metrics.dynamic_depth iterative);
  Circuit.Draw.print iterative;

  (* iteration order matters here, unlike BV: the j-th iteration reads
     classical bits 0..j-1 *)
  let conditioned =
    List.filter_map
      (fun (i : Circuit.Instruction.t) ->
        match i with
        | Conditioned (c, _) ->
            Some
              (String.concat ","
                 (List.map (fun (b, _) -> "c" ^ string_of_int b)
                    c.Circuit.Instruction.bits))
        | Unitary _ | Measure _ | Reset _ | Barrier _ -> None)
      (Circuit.Circ.instructions iterative)
  in
  Printf.printf "\nfeed-forward corrections read: %s\n"
    (String.concat "; " conditioned);

  let dt = Algorithms.Qpe.distribution `Traditional ~bits ~phase in
  let di = Algorithms.Qpe.distribution `Iterative ~bits ~phase in
  let best = Algorithms.Qpe.best_estimate ~bits ~phase in
  Printf.printf "\nbest %d-bit estimate: %d (= %.6f)\n" bits best
    (float_of_int best /. float_of_int (1 lsl bits));
  Printf.printf "P[best]: traditional %.4f, iterative %.4f\n"
    (Sim.Dist.prob dt best) (Sim.Dist.prob di best);
  Printf.printf "exact TV distance between the two forms: %.9f\n"
    (Sim.Dist.tv_distance dt di);

  (* 1024 shots of the dynamic circuit *)
  let hist = Sim.Runner.run_shots ~shots:1024 iterative in
  Printf.printf "\n1024 shots of the 2-qubit iterative QPE:\n";
  Format.printf "%a@." Sim.Runner.pp hist
