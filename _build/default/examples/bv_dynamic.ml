(* Bernstein-Vazirani on two physical qubits: the scenario that
   motivates dynamic quantum circuits (Fig 3 of the paper).

   A traditional n-bit BV circuit needs n+1 qubits; the DQC needs two,
   re-using the physical data qubit across n iterations separated by
   mid-circuit measurement and active reset.  The hidden string is
   recovered deterministically from the classical register.

   Run with: dune exec examples/bv_dynamic.exe -- [hidden-string] *)

let () =
  let s = if Array.length Sys.argv > 1 then Sys.argv.(1) else "1011" in
  let traditional = Algorithms.Bv.circuit s in
  Printf.printf "Hidden string: %s\n\n" s;
  Printf.printf "Traditional circuit: %d qubits, %d gates, depth %d\n"
    (Circuit.Circ.num_qubits traditional)
    (Circuit.Metrics.gate_count traditional)
    (Circuit.Metrics.traditional_depth traditional);

  let r = Dqc.Transform.transform traditional in
  Printf.printf "Dynamic circuit:     %d qubits, %d gates, depth %d, %d iterations\n\n"
    (Circuit.Circ.num_qubits r.circuit)
    (Circuit.Metrics.gate_count r.circuit)
    (Circuit.Metrics.dynamic_depth r.circuit)
    (List.length r.iteration_order);
  Circuit.Draw.print r.circuit;

  (* BV is Toffoli-free: the sound scheduler succeeds, certifying the
     DQC is exactly equivalent without even simulating. *)
  let sound = Dqc.Transform.transform ~mode:`Sound traditional in
  Printf.printf "\nSound scheduling succeeded (certified reordering): %b\n"
    (Circuit.Circ.equal sound.circuit r.circuit);

  (* The register after one run holds the hidden string with
     probability 1 — check it exactly and with shots. *)
  let dist = Sim.Exact.register_distribution r.circuit in
  let expected = Algorithms.Bv.expected_outcome s in
  Printf.printf "Exact P[register = %s] = %.4f\n" s (Sim.Dist.prob dist expected);

  let hist = Sim.Runner.run_shots ~shots:1024 r.circuit in
  Printf.printf "1024 shots, observed %s in %d shots\n"
    s (Sim.Runner.count hist expected);

  (* On a real device with limited connectivity the traditional
     circuit additionally pays routing SWAPs; the 2-qubit dynamic
     circuit never does. *)
  let coupling = Transpile.Coupling.line (String.length s + 1) in
  let routed = Transpile.Route.run ~coupling traditional in
  Printf.printf
    "\nOn a line-topology device: traditional needs %d SWAPs (%d gates \
     after routing),\nthe dynamic circuit needs none.\n"
    routed.Transpile.Route.swaps_inserted
    (Circuit.Metrics.gate_count routed.Transpile.Route.circuit);

  (* Scaling: qubit savings grow linearly with n. *)
  print_endline "\nQubit scaling (traditional vs dynamic):";
  List.iter
    (fun n ->
      let s = String.init n (fun k -> if k mod 2 = 0 then '1' else '0') in
      let c = Algorithms.Bv.circuit s in
      let r = Dqc.Transform.transform c in
      Printf.printf "  n = %2d : %2d qubits -> %d qubits (depth %2d -> %3d)\n" n
        (Circuit.Circ.num_qubits c)
        (Circuit.Circ.num_qubits r.circuit)
        (Circuit.Metrics.traditional_depth c)
        (Circuit.Metrics.dynamic_depth r.circuit))
    [ 2; 4; 8; 12; 16 ]
