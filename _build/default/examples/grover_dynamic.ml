(* Grover search and the limits of 2-qubit dynamization.

   The paper's introduction motivates Toffoli networks with Grover's
   algorithm; this example (an extension beyond the paper's
   evaluation) runs Grover end-to-end through the multi-control
   reduction pass and then shows *why* Grover cannot be squeezed onto
   two qubits by Algorithm 1: its diffuser makes every qubit interact
   with every other in both directions, so the Case-2 interaction
   digraph is cyclic — the library detects and reports this instead of
   silently producing a wrong circuit.

   Run with: dune exec examples/grover_dynamic.exe *)

let () =
  let n = 3 and marked = 5 in
  Printf.printf "Grover search over %d items, marked item %d\n" (1 lsl n) marked;
  let c = Algorithms.Grover.circuit ~n ~marked in
  Printf.printf "circuit: %d qubits, %d gates (optimal %d iterations)\n"
    (Circuit.Circ.num_qubits c)
    (Circuit.Metrics.gate_count c)
    (Algorithms.Grover.optimal_iterations n);

  (* exact success probability *)
  Printf.printf "exact success probability: %.4f\n"
    (Algorithms.Grover.success_probability ~n ~marked);

  (* reduce the multi-control Z/X gates to 2-control Toffolis with the
     V-chain pass and re-verify *)
  let reduced = Decompose.Pass.reduce_mct c in
  Printf.printf "after MCT reduction: %d qubits, %d gates\n"
    (Circuit.Circ.num_qubits reduced)
    (Circuit.Metrics.gate_count reduced);
  let dist = Sim.Exact.measure_all_distribution reduced in
  let marginal = Sim.Dist.marginal ~bits:(List.init n (fun k -> k)) dist in
  Printf.printf "success probability after reduction: %.4f\n"
    (Sim.Dist.prob marginal marked);

  (* 1024 shots, like the paper's experiments *)
  let hist =
    Sim.Runner.run_shots_measured ~shots:1024
      ~measures:(List.init n (fun q -> (q, q)))
      c
  in
  Printf.printf "1024 shots: marked item observed %d times\n\n"
    (Sim.Runner.count hist marked);

  (* attempt the DQC transformation: Grover interleaves Hadamards with
     gates controlled by the same qubits across iterations, so no
     sound single-pass-per-qubit schedule exists.  The sound scheduler
     proves it; Algorithm 1 "succeeds" only by unsound reordering and
     the result is far from equivalent. *)
  print_endline "Attempting the 1-qubit dynamic transformation...";
  let barenco = Decompose.Pass.substitute_toffoli `Barenco reduced in
  (try
     ignore (Dqc.Transform.transform ~mode:`Sound barenco);
     print_endline "unexpectedly succeeded!"
   with
  | Dqc.Interaction.Cyclic qs ->
      Printf.printf
        "sound scheduler: rejected (cyclic interaction among qubits {%s})\n"
        (String.concat ", " (List.map string_of_int qs))
  | Dqc.Transform.Not_transformable msg ->
      Printf.printf "sound scheduler: rejected (%s)\n" msg);
  let unsound = Dqc.Transform.transform barenco in
  Printf.printf
    "Algorithm 1 still emits a circuit, but with %d unsound reorderings\n\
     and TV distance %.4f from real Grover - the violation report is the\n\
     tool's way of saying this algorithm does not dynamize.\n"
    (List.length unsound.violations)
    (Dqc.Equivalence.tv_distance barenco unsound)
