(* Why dynamic-2 beats dynamic-1: a study over the nine Toffoli-based
   DJ benchmarks of Table II / Fig 7.

   The paper's Algorithm 1 emits gates in pattern order without
   checking that skipped pending gates commute.  For Toffoli networks
   this reorders a data qubit's closing Hadamard past a data-data CX,
   so the mid-circuit measurement that feeds the classically
   controlled gates happens in the wrong basis.  Dynamic-1 places
   those conditioned gates on a live superposed data qubit and the
   distribution visibly deviates; dynamic-2 confines them to a
   basis-state ancilla iteration and (for single-Toffoli parities)
   stays exact.

   This example prints, per benchmark: the unsound reorderings the
   transformation performed, and the exact accuracy of both schemes.

   Run with: dune exec examples/dj_toffoli_study.exe *)

let () =
  List.iter
    (fun (o : Algorithms.Oracle.t) ->
      let dj = Algorithms.Dj.circuit o in
      let r1 = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_1 dj in
      let r2 = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2 dj in
      Printf.printf "%s (%d Toffoli gates)\n" o.name
        (Algorithms.Oracle.toffoli_count o);
      let describe label (r : Dqc.Transform.result) =
        Printf.printf
          "  %-10s iterations=%d conditioned=%d  TV distance=%.4f\n" label
          (List.length r.iteration_order)
          (Dqc.Transform.conditioned_count r)
          (Dqc.Equivalence.tv_distance dj r);
        List.iter
          (fun (v : Dqc.Transform.violation) ->
            Printf.printf "    unsound: emitted %s over [%s] in iteration %d\n"
              (Circuit.Instruction.to_string v.emitted)
              (String.concat "; "
                 (List.map Circuit.Instruction.to_string v.jumped_over))
              v.iteration)
          r.violations
      in
      describe "dynamic-1" r1;
      describe "dynamic-2" r2;
      (* the sound scheduler refuses both — proving no sound 2-qubit
         schedule exists for this decomposition *)
      let sound_fails scheme =
        try
          ignore (Dqc.Toffoli_scheme.transform ~mode:`Sound scheme dj);
          false
        with Dqc.Transform.Not_transformable _ -> true
      in
      Printf.printf "  sound scheduling impossible: dyn1=%b dyn2=%b\n\n"
        (sound_fails Dqc.Toffoli_scheme.Dynamic_1)
        (sound_fails Dqc.Toffoli_scheme.Dynamic_2))
    Algorithms.Dj_toffoli.oracles;

  (* Lemma 1 on CARRY: three Toffolis sharing the answer target share
     one ancilla iteration. *)
  let carry = Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY") in
  let dj = Algorithms.Dj.circuit carry in
  let fresh =
    Dqc.Toffoli_scheme.transform (Dqc.Toffoli_scheme.Dynamic_2_shared `Fresh) dj
  in
  let shared = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2 dj in
  Printf.printf
    "Lemma 1 on CARRY: fresh ancillas need %d iterations, shared %d\n"
    (List.length fresh.iteration_order)
    (List.length shared.iteration_order);

  (* the repair: one extra physical data slot keeps the CX sandwich
     quantum, and the sound scheduler certifies exactness *)
  print_endline
    "\nThe multi-slot repair (Dqc.Multi_transform, an extension):";
  List.iter
    (fun (o : Algorithms.Oracle.t) ->
      let dj = Algorithms.Dj.circuit o in
      let prepared =
        Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_1 dj
      in
      match Dqc.Multi_transform.min_exact_slots prepared with
      | Some k ->
          let m =
            Dqc.Multi_transform.transform ~mode:`Sound ~slots:k prepared
          in
          Printf.printf
            "  %-8s dynamic-1 provably exact with %d data slot(s): %d qubits \
             (traditional %d), TV %.1e\n"
            o.name k
            (Circuit.Circ.num_qubits m.circuit)
            (Circuit.Circ.num_qubits dj)
            (Dqc.Multi_transform.tv_distance prepared m)
      | None -> Printf.printf "  %-8s no certified width\n" o.name)
    (List.filteri (fun k _ -> k < 3) Algorithms.Dj_toffoli.oracles)
