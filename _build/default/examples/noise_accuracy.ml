(* Hardware-noise extension study.

   The paper's Fig 7 separation is functional (its simulator is
   noiseless), but on a real device dynamic circuits additionally pay
   for mid-circuit measurement, active reset and the real-time
   classical round trip of conditioned gates.  This example runs the
   Monte-Carlo noise model over the BV benchmarks (where both circuit
   styles are exactly equivalent in the noiseless limit, isolating the
   hardware cost) and sweeps the feed-forward dephasing rate.

   Run with: dune exec examples/noise_accuracy.exe *)

let accuracy ~model ~shots circuit ~measures ~ideal =
  let num_bits =
    List.fold_left
      (fun acc (_, b) -> max acc (b + 1))
      (Circuit.Circ.num_bits circuit)
      measures
  in
  let widened =
    Circuit.Circ.create
      ~roles:(Circuit.Circ.roles circuit)
      ~num_bits
      (Circuit.Circ.instructions circuit
      @ List.map
          (fun (qubit, bit) -> Circuit.Instruction.Measure { qubit; bit })
          measures)
  in
  let h = Sim.Noise.run_shots ~model ~shots widened in
  1. -. Sim.Dist.tv_distance (Sim.Runner.to_dist h) ideal

let () =
  let s = "1011" in
  let traditional = Algorithms.Bv.circuit s in
  let r = Dqc.Transform.transform traditional in
  let num_data = List.length r.data_bit in
  let trad_measures =
    r.data_bit @ List.mapi (fun k (q, _) -> (q, num_data + k)) r.answer_phys
  in
  let dyn_measures =
    List.mapi (fun k (_, phys) -> (phys, num_data + k)) r.answer_phys
  in
  let ideal = Dqc.Equivalence.traditional_distribution traditional r in

  Printf.printf "BV_%s under the device noise model (1 - TV to ideal):\n\n" s;
  Printf.printf "%-28s %12s %12s\n" "model" "traditional" "dynamic";
  let row label model =
    let at = accuracy ~model ~shots:2048 traditional ~measures:trad_measures ~ideal in
    let ad = accuracy ~model ~shots:2048 r.circuit ~measures:dyn_measures ~ideal in
    Printf.printf "%-28s %12.4f %12.4f\n" label at ad
  in
  row "ideal" Sim.Noise.ideal;
  row "default device" Sim.Noise.default;
  row "meas flip only (2%)"
    { Sim.Noise.ideal with Sim.Noise.p_meas_flip = 0.02 };
  row "reset flip only (5%)"
    { Sim.Noise.ideal with Sim.Noise.p_reset_flip = 0.05 };
  row "depolarizing only"
    { Sim.Noise.ideal with Sim.Noise.p_depol1 = 0.001; p_depol2 = 0.01 };

  (* Measurement-error mitigation: calibrate the 4-bit confusion
     matrix and un-mix the noisy dynamic BV histogram. *)
  let p_flip = 0.06 in
  let model = { Sim.Noise.ideal with Sim.Noise.p_meas_flip = p_flip } in
  let noisy =
    Sim.Runner.to_dist (Sim.Noise.run_shots ~model ~shots:20000 r.circuit)
  in
  let exact_reg = Sim.Exact.register_distribution r.circuit in
  let cal = Sim.Mitigation.ideal_confusion ~p_flip ~bits:4 in
  let mitigated = Sim.Mitigation.apply cal noisy in
  Printf.printf
    "\nReadout mitigation on dynamic BV_%s at %.0f%% flip error:\n\
     TV to ideal: %.4f raw -> %.4f mitigated\n" s (100. *. p_flip)
    (Sim.Dist.tv_distance noisy exact_reg)
    (Sim.Dist.tv_distance mitigated exact_reg);

  (* Sweep the feed-forward dephasing rate on a Toffoli-based DJ: the
     conditioned gates of dynamic-1 act on a superposed data qubit,
     dynamic-2's act on a basis-state ancilla — so only dynamic-1
     degrades further as the rate grows. *)
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
  let dj = Algorithms.Dj.circuit o in
  let r1 = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_1 dj in
  let r2 = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2 dj in
  (* reference each scheme against its own noiseless distribution to
     isolate the hardware effect from the functional deviation *)
  let self_accuracy (r : Dqc.Transform.result) model =
    let measures =
      List.mapi
        (fun k (_, phys) -> (phys, List.length r.data_bit + k))
        r.answer_phys
    in
    let own_ideal = Dqc.Equivalence.dynamic_distribution r in
    accuracy ~model ~shots:2048 r.circuit ~measures ~ideal:own_ideal
  in
  Printf.printf
    "\nFeed-forward dephasing sweep on DJ(AND), accuracy vs own noiseless
distribution (isolates the conditioned-gate hardware cost):\n\n";
  Printf.printf "%-12s %12s %12s\n" "p_ff" "dynamic-1" "dynamic-2";
  List.iter
    (fun p ->
      let model = { Sim.Noise.ideal with Sim.Noise.p_feedforward_z = p } in
      Printf.printf "%-12.2f %12.4f %12.4f\n" p (self_accuracy r1 model)
        (self_accuracy r2 model))
    [ 0.0; 0.05; 0.1; 0.2; 0.4 ]
