examples/qpe_dynamic.mli:
