examples/quickstart.mli:
