examples/noise_accuracy.ml: Algorithms Circuit Dqc List Option Printf Sim
