examples/dj_toffoli_study.ml: Algorithms Circuit Dqc List Option Printf String
