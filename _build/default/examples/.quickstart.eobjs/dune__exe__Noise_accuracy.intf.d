examples/noise_accuracy.mli:
