examples/qpe_dynamic.ml: Algorithms Array Circuit Format List Printf Sim String Sys
