examples/simon_dynamic.mli:
