examples/reversible_arithmetic.mli:
