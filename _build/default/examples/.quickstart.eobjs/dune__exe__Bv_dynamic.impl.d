examples/bv_dynamic.ml: Algorithms Array Circuit Dqc List Printf Sim String Sys Transpile
