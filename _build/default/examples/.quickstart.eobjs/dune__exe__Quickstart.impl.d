examples/quickstart.ml: Algorithms Circuit Decompose Dqc Format List Option Printf Sim
