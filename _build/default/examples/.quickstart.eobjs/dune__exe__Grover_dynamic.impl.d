examples/grover_dynamic.ml: Algorithms Circuit Decompose Dqc List Printf Sim String
