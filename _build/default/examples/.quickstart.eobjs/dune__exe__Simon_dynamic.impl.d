examples/simon_dynamic.ml: Algorithms Array Circuit Dqc List Printf Sim String Sys
