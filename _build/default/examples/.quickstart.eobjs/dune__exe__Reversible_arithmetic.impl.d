examples/reversible_arithmetic.ml: Algorithms Array Circuit Decompose Dqc Option Printf String
