examples/grover_dynamic.mli:
