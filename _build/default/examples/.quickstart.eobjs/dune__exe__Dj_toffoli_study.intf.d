examples/dj_toffoli_study.mli:
