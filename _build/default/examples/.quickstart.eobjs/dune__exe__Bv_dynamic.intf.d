examples/bv_dynamic.mli:
