(* Where 2-qubit dynamization ends: reversible arithmetic.

   The paper's title is about "Toffoli based networks".  Oracle-style
   networks (every Toffoli pointing at the answer qubit) dynamize to
   two qubits; this example builds a genuine arithmetic Toffoli
   network — the Cuccaro ripple-carry adder — and uses the
   dynamizability analyzer to show why it cannot: the carry chain
   makes data qubits interact in both directions, so no Case-2
   iteration order exists.

   Run with: dune exec examples/reversible_arithmetic.exe *)

let () =
  let n = 3 in
  let adder, layout = Algorithms.Arithmetic.adder n in
  Printf.printf "%d-bit Cuccaro ripple-carry adder: %d qubits, %d gates\n" n
    (Circuit.Circ.num_qubits adder)
    (Circuit.Metrics.gate_count adder);

  (* verify it adds, exhaustively *)
  let errors = ref 0 in
  for x = 0 to (1 lsl n) - 1 do
    for y = 0 to (1 lsl n) - 1 do
      let sum, carry = Algorithms.Arithmetic.add_values ~n x y in
      if sum <> (x + y) mod (1 lsl n) || carry <> (x + y >= 1 lsl n) then
        incr errors
    done
  done;
  Printf.printf "exhaustive check over %d input pairs: %d errors\n"
    (1 lsl (2 * n)) !errors;
  Printf.printf "example: %d + %d = %d carry %b\n" 5 6
    (fst (Algorithms.Arithmetic.add_values ~n 5 6))
    (snd (Algorithms.Arithmetic.add_values ~n 5 6));

  (* the b register is the output: layout report *)
  Printf.printf "layout: ancilla=q%d, a=%s, b(sum)=%s, carry_out=q%d\n\n"
    layout.Algorithms.Arithmetic.ancilla
    (String.concat ","
       (Array.to_list
          (Array.map (Printf.sprintf "q%d") layout.Algorithms.Arithmetic.a)))
    (String.concat ","
       (Array.to_list
          (Array.map (Printf.sprintf "q%d") layout.Algorithms.Arithmetic.b)))
    layout.Algorithms.Arithmetic.carry_out;

  (* decompose the Toffolis and ask the analyzer about dynamization *)
  print_endline "Dynamizability analysis (after Barenco substitution):";
  let prepared = Decompose.Pass.substitute_toffoli `Barenco adder in
  print_endline (Dqc.Analysis.to_string (Dqc.Analysis.analyze prepared));

  (* contrast with an oracle-style network of the same Toffoli count *)
  print_endline
    "\nContrast: DJ(CARRY) has three Toffolis too, but they all point at\n\
     the answer qubit, so its interaction digraph is acyclic:";
  let dj =
    Algorithms.Dj.circuit
      (Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY"))
  in
  let prepared_dj = Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_2 dj in
  print_endline (Dqc.Analysis.to_string (Dqc.Analysis.analyze prepared_dj))
