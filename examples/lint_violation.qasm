OPENQASM 3.0;
include "stdgates.inc";
// Negative corpus for `dqc_cli lint`: the qubit is reused after a
// mid-circuit measurement without a reset, so the second measurement
// reads a collapsed-and-flipped state -- the linter must report an
// error-severity use-after-measure diagnostic and exit non-zero.
qubit[1] q;
bit[2] c;
h q[0];
c[0] = measure q[0];
x q[0];
c[1] = measure q[0];
