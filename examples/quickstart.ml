(* Quickstart: build the paper's running example — the Deutsch-Jozsa
   circuit for F(a, b) = a + b (the OR oracle of Fig 1) — transform it
   into a dynamic quantum circuit with both schemes, and verify the
   result.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick the OR oracle (Fig 1: CX, CX, Toffoli) and wrap it in the
     Deutsch-Jozsa skeleton. *)
  let oracle = Option.get (Algorithms.Dj_toffoli.oracle_by_name "OR") in
  let traditional = Algorithms.Dj.circuit oracle in
  print_endline "Traditional DJ circuit for F(a,b) = a + b:";
  Circuit.Draw.print traditional;

  (* 2. Transform with the paper's two Toffoli schemes. *)
  let dyn1 = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_1 traditional in
  let dyn2 = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2 traditional in

  print_endline "Dynamic-1 realization (Barenco CV netlist, Eqn 2):";
  Circuit.Draw.print dyn1.circuit;
  print_endline "Dynamic-2 realization (ancilla-unrolled netlist, Eqn 4):";
  Circuit.Draw.print dyn2.circuit;

  (* 3. Compare complexities with the paper's conventions. *)
  let report label c depth =
    Printf.printf "  %-12s %d qubits, %2d gates, depth %2d\n" label
      (Circuit.Circ.num_qubits c)
      (Circuit.Metrics.gate_count c)
      depth
  in
  print_endline "Complexity (CV gates expanded to Clifford+T for counting):";
  report "traditional"
    (Decompose.Pass.substitute_toffoli `Clifford_t traditional)
    (Circuit.Metrics.traditional_depth
       (Decompose.Pass.substitute_toffoli `Clifford_t traditional));
  let expanded r = Decompose.Pass.expand_cv r.Dqc.Transform.circuit in
  report "dynamic-1" (expanded dyn1)
    (Circuit.Metrics.dynamic_depth (expanded dyn1));
  report "dynamic-2" (expanded dyn2)
    (Circuit.Metrics.dynamic_depth (expanded dyn2));

  (* 4. Check functional equivalence exactly (no sampling noise). *)
  Printf.printf "\nExact TV distance to the traditional distribution:\n";
  Printf.printf "  dynamic-1: %.4f  (%d unsound reorderings)\n"
    (Dqc.Equivalence.tv_distance traditional dyn1)
    (List.length dyn1.violations);
  Printf.printf "  dynamic-2: %.4f  (%d unsound reorderings, still exact)\n"
    (Dqc.Equivalence.tv_distance traditional dyn2)
    (List.length dyn2.violations);

  (* 5'. Or drive the whole flow through the pipeline facade — here
     with the multi-slot extension (one extra data qubit) and lowering
     to the IBM native basis, sound-certified exact. *)
  let options =
    Dqc.Pipeline.Options.(
      default
      |> with_scheme Dqc.Toffoli_scheme.Dynamic_1
      |> with_mode `Sound |> with_slots 2 |> with_native true
      |> with_peephole true)
  in
  let compiled = Dqc.Pipeline.compile ~options traditional in
  print_endline
    "\nPipeline: dynamic-1, 2 data slots, sound schedule, native basis:";
  print_endline (Dqc.Pipeline.to_string compiled);

  (* 5. Sample 1024 shots from the dynamic-2 circuit, like the paper. *)
  let nd = List.length dyn2.data_bit in
  let measures =
    List.mapi (fun k (_, phys) -> (phys, nd + k)) dyn2.answer_phys
  in
  let hist =
    Sim.Runner.run_shots_measured ~shots:1024 ~measures dyn2.circuit
  in
  print_endline "\n1024 shots of the dynamic-2 DQC (data bits then answer bit):";
  Format.printf "%a@." Sim.Runner.pp hist
