(* Simon's algorithm with a single physical data qubit.

   Simon's problem — find the hidden shift s with f(x) = f(x XOR s) —
   needs n data + n answer qubits traditionally.  Its oracle only
   sends CX gates from data to answer qubits, so Algorithm 1 dynamizes
   it exactly (sound-certified), onto 1 + n qubits: the first
   benchmark in this repo exercising a DQC with *multiple* answer
   qubits.  The classical half — accumulating orthogonal constraints
   and solving over GF(2) — runs on the Gf2 substrate.

   Run with: dune exec examples/simon_dynamic.exe -- [secret] *)

let () =
  let s = if Array.length Sys.argv > 1 then Sys.argv.(1) else "1011" in
  let n = String.length s in
  let c = Algorithms.Simon.circuit s in
  let r = Dqc.Transform.transform c in
  Printf.printf "Secret: %s\n" s;
  Printf.printf "traditional: %d qubits; dynamic: %d qubits\n"
    (Circuit.Circ.num_qubits c)
    (Circuit.Circ.num_qubits r.circuit);

  (* equivalence certificate *)
  let sound =
    match Dqc.Transform.transform ~mode:`Sound c with
    | (_ : Dqc.Transform.result) -> true
    | exception Dqc.Transform.Not_transformable _ -> false
  in
  Printf.printf "sound-certified exact: %b (TV = %.2e)\n\n" sound
    (Dqc.Equivalence.tv_distance c r);

  (* run the dynamic circuit, show the constraints stream in *)
  let secret = Sim.Bits.of_string s in
  let ys = Algorithms.Simon.sample_constraints ~runs:8 ~dynamic:true s in
  print_endline "dynamic-circuit runs (each outcome y satisfies y.s = 0):";
  List.iter
    (fun y ->
      Printf.printf "  y = %s   y.s = %d\n"
        (Sim.Bits.to_string ~width:n y)
        (if Gf2.dot y secret then 1 else 0))
    ys;

  (* end-to-end recovery *)
  match Algorithms.Simon.recover_secret ~dynamic:true s with
  | Some found ->
      Printf.printf "\nrecovered secret: %s (%s)\n"
        (Sim.Bits.to_string ~width:n found)
        (if found = secret then "correct" else "WRONG")
  | None -> print_endline "\nrecovery did not converge"
