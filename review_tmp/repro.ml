(* check: does Pipeline report certified for an Algorithm1 output with violations? *)
let () =
  let oracles = Algorithms.Dj_toffoli.oracles in
  List.iter
    (fun (o : Algorithms.Oracle.t) ->
      let dj = Algorithms.Dj_toffoli.circuit o in
      let prepared = Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_2 dj in
      let r = Dqc.Transform.transform ~mode:`Algorithm1 prepared in
      if r.Dqc.Transform.violations <> [] then begin
        let tv = Dqc.Equivalence.tv_distance prepared r in
        let out = Dqc.Pipeline.compile ~options:Dqc.Pipeline.Options.default dj in
        Printf.printf "%s: violations=%d tv=%.6f pipeline.certified=%b pipeline.tv=%s\n%!"
          o.Algorithms.Oracle.name
          (List.length r.Dqc.Transform.violations) tv
          out.Dqc.Pipeline.certified
          (match out.Dqc.Pipeline.tv with Some t -> Printf.sprintf "%.6f" t | None -> "None")
      end)
    oracles
