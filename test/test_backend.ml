(* Execution-backend layer: policy selection, the parallel shot
   engine's determinism guarantees, the shared-prefix cache, and
   cross-backend statistical agreement. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let hist_pairs = Alcotest.(list (pair int int))

let check_hist msg a b =
  Alcotest.check hist_pairs msg (Sim.Runner.to_list a) (Sim.Runner.to_list b)

let hist_tv a b =
  Sim.Dist.tv_distance (Sim.Runner.to_dist a) (Sim.Runner.to_dist b)

let dj_and () = Algorithms.Dj.circuit (Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND"))

let dyn2_and () =
  (Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2 (dj_and ()))
    .Dqc.Transform.circuit

(* ------------------------------------------------------------------ *)
(* Measurement plans                                                  *)

let test_plan_to_pairs () =
  Alcotest.(check (list (pair int int)))
    "measure_all" [ (0, 0); (1, 1); (2, 2) ]
    (Sim.Measurement_plan.to_pairs ~num_qubits:3 Sim.Measurement_plan.measure_all);
  let p =
    Sim.Measurement_plan.(
      combine (measure ~qubit:2 ~bit:0) (measure ~qubit:0 ~bit:1))
  in
  Alcotest.(check (list (pair int int)))
    "explicit pairs" [ (2, 0); (0, 1) ]
    (Sim.Measurement_plan.to_pairs ~num_qubits:3 p)

let test_plan_combine_absorbs () =
  let p =
    Sim.Measurement_plan.(combine measure_all (measure ~qubit:1 ~bit:5))
  in
  Alcotest.(check (list (pair int int)))
    "measure_all absorbs" [ (0, 0); (1, 1) ]
    (Sim.Measurement_plan.to_pairs ~num_qubits:2 p)

let test_plan_instrument () =
  let c = dj_and () in
  let instrumented =
    Sim.Measurement_plan.instrument Sim.Measurement_plan.measure_all c
  in
  let measures =
    List.length
      (List.filter
         (function Circuit.Instruction.Measure _ -> true | _ -> false)
         (Circuit.Circ.instructions instrumented))
  in
  check_int "one terminal measure per qubit"
    (Circuit.Circ.num_qubits c) measures

(* ------------------------------------------------------------------ *)
(* Parallel shot engine                                               *)

let test_parallel_validation () =
  Alcotest.check_raises "negative shots"
    (Invalid_argument "Parallel.run: negative shots") (fun () ->
      ignore
        (Sim.Parallel.run ~seed:1 ~width:1 ~shots:(-1) (fun ~rng:_ ~index -> index)));
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Parallel.run: domains < 1") (fun () ->
      ignore
        (Sim.Parallel.run ~domains:0 ~seed:1 ~width:1 ~shots:4
           (fun ~rng:_ ~index -> index)))

let test_parallel_deterministic_sharding () =
  (* outcome of shot i depends only on (seed, i): any domain count
     yields the same histogram *)
  let f ~rng ~index:_ = Random.State.int rng 8 in
  let reference = Sim.Parallel.run ~domains:1 ~seed:42 ~width:3 ~shots:200 f in
  List.iter
    (fun domains ->
      check_hist
        (Printf.sprintf "%d domains" domains)
        reference
        (Sim.Parallel.run ~domains ~seed:42 ~width:3 ~shots:200 f))
    [ 2; 3; 7; 200 ];
  check_int "all shots tallied" 200 (Sim.Runner.shots reference)

(* ------------------------------------------------------------------ *)
(* Policy selection                                                   *)

let test_policy_strings () =
  List.iter
    (fun p ->
      match Sim.Backend.policy_of_string (Sim.Backend.policy_to_string p) with
      | Some q -> check_bool "roundtrip" true (p = q)
      | None -> Alcotest.fail "policy string did not parse back")
    [
      Sim.Backend.Auto;
      Statevector_dense;
      Sparse_statevector;
      Stabilizer;
      Exact_branch;
    ];
  check_bool "unknown rejected" true
    (Sim.Backend.policy_of_string "qpu" = None)

let test_select_auto () =
  let bv = Algorithms.Bv.circuit "1011" in
  check_bool "Clifford -> stabilizer" true
    (Sim.Backend.select ~shots:1024 bv = `Stabilizer);
  check_bool "non-Clifford, few branch points -> exact" true
    (Sim.Backend.select ~shots:1024 (dj_and ()) = `Exact)

let test_select_forced_stabilizer_raises () =
  match Sim.Backend.select ~policy:Sim.Backend.Stabilizer ~shots:16 (dj_and ()) with
  | exception Sim.Stabilizer.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Stabilizer.Unsupported"

(* ------------------------------------------------------------------ *)
(* Determinism of Backend.run                                         *)

let test_run_deterministic_across_domains () =
  let c = dyn2_and () in
  let run ?prefix_cache domains =
    Sim.Backend.run ~policy:Sim.Backend.Statevector_dense ~seed:7 ~domains
      ?prefix_cache ~shots:300 c
  in
  let reference = run 1 in
  check_hist "2 domains" reference (run 2);
  check_hist "5 domains" reference (run 5);
  check_hist "cache off" reference (run ~prefix_cache:false 1);
  check_hist "cache off, 3 domains" reference (run ~prefix_cache:false 3)

let test_run_deterministic_auto () =
  let c = dj_and () in
  let plan = Sim.Measurement_plan.measure_all in
  let reference = Sim.Backend.run ~seed:11 ~domains:1 ~plan ~shots:256 c in
  check_hist "auto, 4 domains" reference
    (Sim.Backend.run ~seed:11 ~domains:4 ~plan ~shots:256 c)

let test_run_deterministic_stabilizer () =
  let c = Algorithms.Bv.circuit "1101" in
  let plan = Sim.Measurement_plan.measure_all in
  let run domains =
    Sim.Backend.run ~policy:Sim.Backend.Stabilizer ~seed:3 ~domains ~plan
      ~shots:128 c
  in
  check_hist "stabilizer sharded" (run 1) (run 3)

(* ------------------------------------------------------------------ *)
(* Cross-backend agreement (TV <= 0.05 at 4096 shots)                 *)

let shots = 4096
let tv_budget = 0.05

let agree name c plan policies =
  let hists =
    List.map
      (fun policy -> Sim.Backend.run ~policy ~seed:23 ~plan ~shots c)
      policies
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            check_bool (Printf.sprintf "%s: %d vs %d" name i j) true
              (hist_tv a b <= tv_budget))
        hists)
    hists

let test_agreement_bv () =
  agree "BV" (Algorithms.Bv.circuit "1011") Sim.Measurement_plan.measure_all
    [ Sim.Backend.Statevector_dense; Stabilizer; Exact_branch ]

let test_agreement_dj () =
  (* Toffoli oracle: not Clifford, so dense vs exact only *)
  agree "DJ(AND)" (dj_and ()) Sim.Measurement_plan.measure_all
    [ Sim.Backend.Statevector_dense; Exact_branch ]

let test_agreement_teleport () =
  let c = Algorithms.Teleport.circuit Circuit.Gate.H in
  agree "teleport(H)" c
    (Sim.Measurement_plan.measure ~qubit:2 ~bit:2)
    [ Sim.Backend.Statevector_dense; Exact_branch ]

let test_agreement_exact_reference () =
  (* sampled histograms track the exact branching distribution *)
  let c = dyn2_and () in
  let exact = Sim.Exact.register_distribution c in
  let h =
    Sim.Backend.run ~policy:Sim.Backend.Statevector_dense ~seed:31 ~shots c
  in
  check_bool "dense vs exact law" true
    (Sim.Dist.tv_distance (Sim.Runner.to_dist h) exact <= tv_budget)

(* ------------------------------------------------------------------ *)
(* Shared-prefix cache                                                *)

let test_prefix_split () =
  let c = dyn2_and () in
  let prefix, suffix = Sim.Backend.Prefix.split c in
  check_int "partition"
    (List.length (Circuit.Circ.instructions c))
    (List.length prefix + List.length suffix);
  check_bool "prefix has no branch instruction" true
    (List.for_all
       (function
         | Circuit.Instruction.Measure _ | Circuit.Instruction.Reset _ -> false
         | _ -> true)
       prefix);
  match suffix with
  | (Circuit.Instruction.Measure _ | Circuit.Instruction.Reset _) :: _ -> ()
  | _ -> Alcotest.fail "suffix must start at the first measurement/reset"

let test_prefix_cache_equivalence () =
  (* byte-identical to the uncached dense engine, which reuses the same
     per-shot RNG states: the prefix consumes no randomness *)
  let check_circuit name c =
    let run prefix_cache =
      Sim.Backend.run ~policy:Sim.Backend.Statevector_dense ~seed:13
        ~domains:1 ~prefix_cache ~shots:400 c
    in
    check_hist name (run true) (run false)
  in
  check_circuit "dyn2 DJ(AND)" (dyn2_and ());
  check_circuit "teleport"
    (Algorithms.Teleport.circuit Circuit.Gate.H);
  check_circuit "terminal-only measures"
    (Sim.Measurement_plan.instrument Sim.Measurement_plan.measure_all
       (dj_and ()))

(* ------------------------------------------------------------------ *)
(* Noise engine on the parallel/prefix machinery                      *)

let test_noise_deterministic_across_domains () =
  let c = dyn2_and () in
  let run domains =
    Sim.Noise.run_shots ~seed:17 ~domains ~model:Sim.Noise.default ~shots:300 c
  in
  check_hist "noisy, 1 vs 4 domains" (run 1) (run 4)

let test_noise_ideal_matches_exact () =
  let c = dyn2_and () in
  let h =
    Sim.Noise.run_shots ~seed:19 ~model:Sim.Noise.ideal ~shots:4096 c
  in
  check_bool "ideal noise = exact law" true
    (Sim.Dist.tv_distance (Sim.Runner.to_dist h)
       (Sim.Exact.register_distribution c)
    <= tv_budget)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "backend"
    [
      ( "measurement_plan",
        [
          Alcotest.test_case "to_pairs" `Quick test_plan_to_pairs;
          Alcotest.test_case "combine absorbs" `Quick test_plan_combine_absorbs;
          Alcotest.test_case "instrument" `Quick test_plan_instrument;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "validation" `Quick test_parallel_validation;
          Alcotest.test_case "deterministic sharding" `Quick
            test_parallel_deterministic_sharding;
        ] );
      ( "policy",
        [
          Alcotest.test_case "strings" `Quick test_policy_strings;
          Alcotest.test_case "auto selection" `Quick test_select_auto;
          Alcotest.test_case "forced stabilizer raises" `Quick
            test_select_forced_stabilizer_raises;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "dense across domains" `Quick
            test_run_deterministic_across_domains;
          Alcotest.test_case "auto across domains" `Quick
            test_run_deterministic_auto;
          Alcotest.test_case "stabilizer across domains" `Quick
            test_run_deterministic_stabilizer;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "BV dense/stabilizer/exact" `Slow
            test_agreement_bv;
          Alcotest.test_case "DJ(AND) dense/exact" `Slow test_agreement_dj;
          Alcotest.test_case "teleport dense/exact" `Slow
            test_agreement_teleport;
          Alcotest.test_case "dense vs exact law" `Quick
            test_agreement_exact_reference;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "split" `Quick test_prefix_split;
          Alcotest.test_case "cache equivalence" `Quick
            test_prefix_cache_equivalence;
        ] );
      ( "noise",
        [
          Alcotest.test_case "deterministic across domains" `Quick
            test_noise_deterministic_across_domains;
          Alcotest.test_case "ideal matches exact" `Slow
            test_noise_ideal_matches_exact;
        ] );
    ]
