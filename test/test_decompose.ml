open Circuit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let u ?controls g t = Instruction.Unitary (Instruction.app ?controls g t)

let circuit_of ~n instrs =
  Circ.create ~roles:(Array.make n Circ.Data) ~num_bits:0 instrs

let toffoli_ref ~n ~c1 ~c2 ~target =
  circuit_of ~n [ u ~controls:[ c1; c2 ] Gate.X target ]

(* ------------------------------------------------------------------ *)
(* Clifford_t                                                         *)

let test_clifford_t_toffoli () =
  let direct = toffoli_ref ~n:3 ~c1:0 ~c2:1 ~target:2 in
  let dec = circuit_of ~n:3 (Decompose.Clifford_t.toffoli ~c1:0 ~c2:1 ~target:2) in
  check_bool "exact" true (Sim.Unitary.equivalent ~up_to_phase:false direct dec);
  check_int "15 gates" 15 (List.length (Decompose.Clifford_t.toffoli ~c1:0 ~c2:1 ~target:2))

let test_clifford_t_toffoli_permuted () =
  let direct = toffoli_ref ~n:3 ~c1:2 ~c2:0 ~target:1 in
  let dec = circuit_of ~n:3 (Decompose.Clifford_t.toffoli ~c1:2 ~c2:0 ~target:1) in
  check_bool "permuted" true (Sim.Unitary.equivalent ~up_to_phase:false direct dec)

let test_cv_cvdg () =
  let cv_direct = circuit_of ~n:2 [ u ~controls:[ 0 ] Gate.V 1 ] in
  let cv_dec = circuit_of ~n:2 (Decompose.Clifford_t.cv ~control:0 ~target:1) in
  check_bool "cv exact" true
    (Sim.Unitary.equivalent ~up_to_phase:false cv_direct cv_dec);
  let cvdg_direct = circuit_of ~n:2 [ u ~controls:[ 0 ] Gate.Vdg 1 ] in
  let cvdg_dec = circuit_of ~n:2 (Decompose.Clifford_t.cvdg ~control:0 ~target:1) in
  check_bool "cvdg exact" true
    (Sim.Unitary.equivalent ~up_to_phase:false cvdg_direct cvdg_dec);
  check_int "7 gates" 7 (List.length (Decompose.Clifford_t.cv ~control:0 ~target:1))

let prop_cphase =
  QCheck2.Test.make ~name:"cphase(theta) decomposition exact" ~count:50
    QCheck2.Gen.(float_bound_inclusive 6.28)
    (fun theta ->
      let direct = circuit_of ~n:2 [ u ~controls:[ 0 ] (Gate.Phase theta) 1 ] in
      let dec = circuit_of ~n:2 (Decompose.Clifford_t.cphase ~theta ~control:0 ~target:1) in
      Sim.Unitary.equivalent ~up_to_phase:false direct dec)

(* ------------------------------------------------------------------ *)
(* Barenco                                                            *)

let test_barenco () =
  let direct = toffoli_ref ~n:3 ~c1:0 ~c2:1 ~target:2 in
  let dec = circuit_of ~n:3 (Decompose.Barenco.toffoli ~c1:0 ~c2:1 ~target:2) in
  check_bool "exact" true (Sim.Unitary.equivalent ~up_to_phase:false direct dec);
  check_int "5 gates" 5 (List.length (Decompose.Barenco.toffoli ~c1:0 ~c2:1 ~target:2))

let test_barenco_expanded () =
  let direct = toffoli_ref ~n:3 ~c1:0 ~c2:1 ~target:2 in
  let dec =
    Decompose.Pass.expand_cv (circuit_of ~n:3 (Decompose.Barenco.toffoli ~c1:0 ~c2:1 ~target:2))
  in
  check_bool "clifford+t only" true
    (List.for_all
       (fun (i : Instruction.t) ->
         match i with
         | Unitary { gate; _ } ->
             Gate.is_clifford_t gate
             || (match gate with Gate.Phase _ -> true | _ -> false)
         | Conditioned _ | Measure _ | Reset _ | Barrier _ -> false)
       (Circ.instructions dec));
  check_bool "exact" true (Sim.Unitary.equivalent ~up_to_phase:false direct dec)

(* ------------------------------------------------------------------ *)
(* Ancilla_unroll                                                     *)

let run_unitaries ~n ~input instrs =
  let st = Sim.Statevector.create n ~num_bits:0 in
  for q = 0 to n - 1 do
    if Sim.Bits.get input q then Sim.Statevector.apply_gate st Gate.X q
  done;
  List.iter
    (fun (i : Instruction.t) ->
      match i with
      | Unitary a -> Sim.Statevector.apply_app st a
      | Conditioned _ | Measure _ | Reset _ | Barrier _ -> assert false)
    instrs;
  Sim.Statevector.amplitudes st

(* On basis input |c1 c2 t> with ancilla |0>, the unrolled netlist must
   act as Toffoli and return the ancilla to |0>. *)
let test_unroll_basis () =
  let instrs = Decompose.Ancilla_unroll.toffoli ~c1:0 ~c2:1 ~target:2 ~ancilla:3 in
  let ok = ref true in
  for x = 0 to 7 do
    let amps = run_unitaries ~n:4 ~input:x instrs in
    let t_out = Sim.Bits.get x 2 <> (Sim.Bits.get x 0 && Sim.Bits.get x 1) in
    let expected = Sim.Bits.set x 2 t_out in
    let amp = Linalg.Cvec.get amps expected in
    if not (Linalg.Complex_ext.approx_equal amp Complex.one) then ok := false
  done;
  check_bool "all basis inputs" true !ok

let test_unroll_shape () =
  let instrs = Decompose.Ancilla_unroll.toffoli ~c1:0 ~c2:1 ~target:2 ~ancilla:3 in
  check_int "7 gates (with uncompute)" 7 (List.length instrs)

let test_morph () =
  check_int "fresh parity = 2 CX" 2
    (List.length (Decompose.Ancilla_unroll.morph ~parity:[] ~controls:[ 0; 1 ] ~ancilla:3));
  check_int "shared control drops out" 2
    (List.length
       (Decompose.Ancilla_unroll.morph ~parity:[ 0; 1 ] ~controls:[ 0; 2 ] ~ancilla:3));
  check_int "same parity = nothing" 0
    (List.length
       (Decompose.Ancilla_unroll.morph ~parity:[ 0; 1 ] ~controls:[ 1; 0 ] ~ancilla:3));
  check_int "release" 2
    (List.length (Decompose.Ancilla_unroll.release ~parity:[ 0; 1 ] ~ancilla:3))

let test_shared_pair () =
  (* Lemma 1 / Eqn 5: two Toffolis on the same target via one ancilla *)
  let i1, parity =
    Decompose.Ancilla_unroll.toffoli_shared ~parity:[] ~c1:0 ~c2:1 ~target:3 ~ancilla:4
  in
  let i2, parity' =
    Decompose.Ancilla_unroll.toffoli_shared ~parity ~c1:0 ~c2:2 ~target:3 ~ancilla:4
  in
  let all = i1 @ i2 @ Decompose.Ancilla_unroll.release ~parity:parity' ~ancilla:4 in
  let direct =
    [ u ~controls:[ 0; 1 ] Gate.X 3; u ~controls:[ 0; 2 ] Gate.X 3 ]
  in
  let agree = ref true in
  for x = 0 to 15 do
    let a = run_unitaries ~n:5 ~input:x all in
    let b = run_unitaries ~n:5 ~input:x direct in
    if not (Linalg.Cvec.approx_equal a b) then agree := false
  done;
  check_bool "pair agrees with two Toffolis" true !agree;
  let fresh_len =
    2 * List.length (Decompose.Ancilla_unroll.toffoli ~c1:0 ~c2:1 ~target:3 ~ancilla:4)
  in
  check_bool "sharing is smaller" true (List.length all < fresh_len)

(* ------------------------------------------------------------------ *)
(* Mct                                                                *)

let test_ancillas_needed () =
  check_int "n=2" 0 (Decompose.Mct.ancillas_needed 2);
  check_int "n=3" 1 (Decompose.Mct.ancillas_needed 3);
  check_int "n=5" 3 (Decompose.Mct.ancillas_needed 5)

let mct_matches_direct ~controls_count =
  let controls = List.init controls_count (fun k -> k) in
  let target = controls_count in
  let ancillas =
    List.init (Decompose.Mct.ancillas_needed controls_count) (fun k ->
        controls_count + 1 + k)
  in
  let n = controls_count + 1 + List.length ancillas in
  let instrs = Decompose.Mct.v_chain ~controls ~target ~ancillas in
  let ok = ref true in
  for x = 0 to (1 lsl (controls_count + 1)) - 1 do
    let amps = run_unitaries ~n ~input:x instrs in
    let all_ones = List.for_all (fun q -> Sim.Bits.get x q) controls in
    let expected =
      if all_ones then Sim.Bits.set x target (not (Sim.Bits.get x target))
      else x
    in
    let amp = Linalg.Cvec.get amps expected in
    if not (Linalg.Complex_ext.approx_equal amp Complex.one) then ok := false
  done;
  !ok

let test_v_chain () =
  check_bool "0 controls = X" true (mct_matches_direct ~controls_count:0);
  check_bool "1 control = CX" true (mct_matches_direct ~controls_count:1);
  check_bool "2 controls = CCX" true (mct_matches_direct ~controls_count:2);
  check_bool "3 controls" true (mct_matches_direct ~controls_count:3);
  check_bool "4 controls" true (mct_matches_direct ~controls_count:4);
  check_bool "5 controls" true (mct_matches_direct ~controls_count:5)

let dirty_matches_direct ~controls_count =
  let controls = List.init controls_count (fun k -> k) in
  let target = controls_count in
  let borrowed =
    List.init (controls_count - 2) (fun k -> controls_count + 1 + k)
  in
  let n = controls_count + 1 + List.length borrowed in
  let instrs = Decompose.Mct.dirty_staircase ~controls ~target ~borrowed in
  let ok = ref true in
  (* every basis input, including arbitrary (dirty) borrowed values *)
  for x = 0 to (1 lsl n) - 1 do
    let amps = run_unitaries ~n ~input:x instrs in
    let all_ones = List.for_all (fun q -> Sim.Bits.get x q) controls in
    let expected =
      if all_ones then Sim.Bits.set x target (not (Sim.Bits.get x target))
      else x
    in
    let amp = Linalg.Cvec.get amps expected in
    if not (Linalg.Complex_ext.approx_equal amp Complex.one) then ok := false
  done;
  !ok

let test_dirty_staircase () =
  check_bool "3 controls" true (dirty_matches_direct ~controls_count:3);
  check_bool "4 controls" true (dirty_matches_direct ~controls_count:4);
  check_bool "5 controls" true (dirty_matches_direct ~controls_count:5)

let test_dirty_staircase_errors () =
  check_bool "too few controls" true
    (try
       ignore
         (Decompose.Mct.dirty_staircase ~controls:[ 0; 1 ] ~target:2
            ~borrowed:[]);
       false
     with Invalid_argument _ -> true);
  check_bool "too few borrowed" true
    (try
       ignore
         (Decompose.Mct.dirty_staircase ~controls:[ 0; 1; 2 ] ~target:3
            ~borrowed:[]);
       false
     with Invalid_argument _ -> true)

let test_v_chain_errors () =
  Alcotest.check_raises "too few ancillas"
    (Invalid_argument "Mct.v_chain: not enough ancillas") (fun () ->
      ignore (Decompose.Mct.v_chain ~controls:[ 0; 1; 2 ] ~target:3 ~ancillas:[]));
  Alcotest.check_raises "repeated qubit"
    (Invalid_argument "Mct.v_chain: repeated qubit") (fun () ->
      ignore (Decompose.Mct.v_chain ~controls:[ 0; 1; 2 ] ~target:2 ~ancillas:[ 4 ]))

(* ------------------------------------------------------------------ *)
(* Pass                                                               *)

let two_toffolis =
  (* data controls, answer target - the shape of the DJ oracles *)
  Circ.create
    ~roles:[| Circ.Data; Circ.Data; Circ.Data; Circ.Answer |]
    ~num_bits:0
    [
      u Gate.H 0;
      u ~controls:[ 0; 1 ] Gate.X 3;
      u ~controls:[ 0; 2 ] Gate.X 3;
      u Gate.H 0;
    ]

let test_pass_clifford_barenco () =
  List.iter
    (fun scheme ->
      let out = Decompose.Pass.substitute_toffoli scheme two_toffolis in
      check_bool "equivalent" true (Sim.Unitary.equivalent two_toffolis out);
      check_bool "no toffoli left" true
        (List.for_all
           (fun (i : Instruction.t) ->
             match i with
             | Unitary { controls; _ } -> List.length controls <= 1
             | Conditioned _ | Measure _ | Reset _ | Barrier _ -> true)
           (Circ.instructions out)))
    [ `Clifford_t; `Barenco ]

let count_ancillas c = List.length (Circ.qubits_with_role c Circ.Ancilla)

let test_pass_ancilla_sharing () =
  let fresh = Decompose.Pass.substitute_toffoli (`Ancilla `Fresh) two_toffolis in
  let per_target = Decompose.Pass.substitute_toffoli (`Ancilla `Per_target) two_toffolis in
  let global = Decompose.Pass.substitute_toffoli (`Ancilla `Global) two_toffolis in
  check_int "fresh: one ancilla per toffoli" 2 (count_ancillas fresh);
  check_int "per-target: one (same target)" 1 (count_ancillas per_target);
  check_int "global: one" 1 (count_ancillas global);
  check_bool "per-target smaller than fresh" true
    (Metrics.gate_count per_target < Metrics.gate_count fresh)

let test_pass_ancilla_semantics () =
  List.iter
    (fun sharing ->
      let out = Decompose.Pass.substitute_toffoli (`Ancilla sharing) two_toffolis in
      let measures = List.init 4 (fun q -> (q, q)) in
      let d_ref = Sim.Exact.measured_distribution ~measures two_toffolis in
      let d_out = Sim.Exact.measured_distribution ~measures out in
      check_bool "distribution preserved" true
        (Sim.Dist.approx_equal d_ref d_out))
    [ `Fresh; `Per_target; `Global ]

let test_reduce_mct () =
  let c = circuit_of ~n:5 [ u ~controls:[ 0; 1; 2; 3 ] Gate.X 4 ] in
  let out = Decompose.Pass.reduce_mct c in
  check_bool "only <=2 controls" true
    (List.for_all
       (fun (i : Instruction.t) ->
         match i with
         | Unitary { controls; _ } -> List.length controls <= 2
         | Conditioned _ | Measure _ | Reset _ | Barrier _ -> true)
       (Circ.instructions out));
  check_int "2 clean ancillas appended" 2 (count_ancillas out)

let test_pass_rejects () =
  let bad = circuit_of ~n:3 [ u ~controls:[ 0; 1 ] Gate.Z 2 ] in
  check_bool "ccz rejected" true
    (try
       ignore (Decompose.Pass.substitute_toffoli `Barenco bad);
       false
     with Invalid_argument _ -> true)

let test_pass_no_toffoli_unchanged () =
  let c = circuit_of ~n:2 [ u Gate.H 0; u ~controls:[ 0 ] Gate.X 1 ] in
  check_bool "clifford_t identity" true
    (Circ.equal c (Decompose.Pass.substitute_toffoli `Clifford_t c));
  check_bool "barenco identity" true
    (Circ.equal c (Decompose.Pass.substitute_toffoli `Barenco c))

let test_expand_cv_leaves_conditioned () =
  let roles = [| Circ.Data |] in
  let c =
    Circ.create ~roles ~num_bits:1
      [ Instruction.Conditioned (Instruction.cond_bit 0 true, Instruction.app Gate.V 0) ]
  in
  check_bool "conditioned V untouched" true
    (Circ.equal c (Decompose.Pass.expand_cv c))

(* ------------------------------------------------------------------ *)
(* Peephole                                                           *)

let test_peephole_cancels () =
  let c = circuit_of ~n:2 [ u Gate.H 0; u Gate.H 0; u Gate.X 1 ] in
  let out = Decompose.Peephole.cancel_inverses c in
  check_int "hh removed" 1 (List.length (Circ.instructions out));
  check_int "removed_count" 2 (Decompose.Peephole.removed_count c)

let test_peephole_inverse_pair () =
  let c = circuit_of ~n:1 [ u Gate.T 0; u Gate.Tdg 0 ] in
  check_int "t tdg removed" 0
    (List.length (Circ.instructions (Decompose.Peephole.cancel_inverses c)))

let test_peephole_blocked () =
  let c = circuit_of ~n:1 [ u Gate.H 0; u Gate.X 0; u Gate.H 0 ] in
  check_int "blocked by X" 3
    (List.length (Circ.instructions (Decompose.Peephole.cancel_inverses c)))

let test_peephole_across_disjoint () =
  let c = circuit_of ~n:2 [ u Gate.H 0; u Gate.X 1; u Gate.H 0 ] in
  check_int "cancel across disjoint wire" 1
    (List.length (Circ.instructions (Decompose.Peephole.cancel_inverses c)))

let test_peephole_cascade () =
  let c = circuit_of ~n:1 [ u Gate.T 0; u Gate.H 0; u Gate.H 0; u Gate.Tdg 0 ] in
  check_int "cascade to empty" 0
    (List.length (Circ.instructions (Decompose.Peephole.cancel_inverses c)))

let test_peephole_conditioned () =
  let roles = [| Circ.Data |] in
  let cnd = Instruction.cond_bit 0 true in
  let mk instrs = Circ.create ~roles ~num_bits:1 instrs in
  let pair =
    mk
      [
        Instruction.Conditioned (cnd, Instruction.app Gate.X 0);
        Instruction.Conditioned (cnd, Instruction.app Gate.X 0);
      ]
  in
  check_int "conditioned pair cancels" 0
    (List.length (Circ.instructions (Decompose.Peephole.cancel_inverses pair)));
  let blocked =
    mk
      [
        Instruction.Conditioned (cnd, Instruction.app Gate.X 0);
        Instruction.Measure { qubit = 0; bit = 0 };
        Instruction.Conditioned (cnd, Instruction.app Gate.X 0);
      ]
  in
  check_int "measure on qubit+bit blocks" 3
    (List.length (Circ.instructions (Decompose.Peephole.cancel_inverses blocked)))

let test_merge_rotations () =
  let mk instrs = circuit_of ~n:2 instrs in
  let merged c = Circ.instructions (Decompose.Peephole.merge_rotations c) in
  check_int "rz pair merges" 1
    (List.length (merged (mk [ u (Gate.Rz 0.3) 0; u (Gate.Rz 0.4) 0 ])));
  check_int "cancels to identity" 0
    (List.length (merged (mk [ u (Gate.Rz 0.5) 0; u (Gate.Rz (-0.5)) 0 ])));
  check_int "full turn drops" 0
    (List.length
       (merged (mk [ u (Gate.Rz Float.pi) 0; u (Gate.Rz Float.pi) 0 ])));
  check_int "blocked by other wire gate" 3
    (List.length
       (merged (mk [ u (Gate.Rz 0.3) 0; u Gate.H 0; u (Gate.Rz 0.4) 0 ])));
  check_int "across disjoint wire" 2
    (List.length
       (merged (mk [ u (Gate.Rz 0.3) 0; u Gate.H 1; u (Gate.Rz 0.4) 0 ])));
  check_int "phase family separate" 2
    (List.length
       (merged (mk [ u (Gate.Rz 0.3) 0; u (Gate.Phase 0.4) 0 ])))

let gate_gen = QCheck2.Gen.oneofl Gate.[ H; X; Y; Z; S; Sdg; T; Tdg; V; Vdg ]

let random_circuit_gen =
  QCheck2.Gen.(
    list_size (int_range 0 20)
      (oneof
         [
           map2 (fun g q -> u g q) gate_gen (int_range 0 2);
           map3
             (fun g c t -> if c = t then u g c else u ~controls:[ c ] g t)
             gate_gen (int_range 0 2) (int_range 0 2);
         ]))

let prop_merge_preserves_unitary =
  QCheck2.Test.make ~name:"rotation merging preserves circuit unitary"
    ~count:60
    QCheck2.Gen.(
      list_size (int_range 0 15)
        (oneof
           [
             map2
               (fun a q -> u (Gate.Rz a) q)
               (float_bound_inclusive 6.4) (int_range 0 1);
             map2
               (fun a q -> u (Gate.Phase a) q)
               (float_bound_inclusive 6.4) (int_range 0 1);
             map (fun q -> u Gate.H q) (int_range 0 1);
           ]))
    (fun instrs ->
      let c = circuit_of ~n:2 instrs in
      Sim.Unitary.equivalent c (Decompose.Peephole.merge_rotations c))

let prop_peephole_preserves_unitary =
  QCheck2.Test.make ~name:"peephole preserves circuit unitary" ~count:100
    random_circuit_gen
    (fun instrs ->
      let c = circuit_of ~n:3 instrs in
      Sim.Unitary.equivalent ~up_to_phase:false c (Decompose.Peephole.cancel_inverses c))

(* Every decomposition output must carry no error-severity lint
   diagnostic: in particular the ancilla-backed schemes must provably
   or at least plausibly return their scratch qubits to |0>. *)
let test_substitutions_lint_clean () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY") in
  let dj = Algorithms.Dj.circuit o in
  List.iter
    (fun (label, scheme) ->
      let out = Decompose.Pass.substitute_toffoli scheme dj in
      let r = Lint.run out in
      Alcotest.(check int) (label ^ ": error diagnostics") 0 r.Lint.errors)
    [
      ("clifford_t", `Clifford_t);
      ("barenco", `Barenco);
      ("ancilla fresh", `Ancilla `Fresh);
      ("ancilla per-target", `Ancilla `Per_target);
      ("ancilla global", `Ancilla `Global);
    ]

let () =
  Alcotest.run "decompose"
    [
      ( "clifford_t",
        [
          Alcotest.test_case "toffoli" `Quick test_clifford_t_toffoli;
          Alcotest.test_case "toffoli permuted" `Quick
            test_clifford_t_toffoli_permuted;
          Alcotest.test_case "cv/cvdg" `Quick test_cv_cvdg;
          QCheck_alcotest.to_alcotest prop_cphase;
        ] );
      ( "barenco",
        [
          Alcotest.test_case "toffoli" `Quick test_barenco;
          Alcotest.test_case "expanded" `Quick test_barenco_expanded;
        ] );
      ( "ancilla_unroll",
        [
          Alcotest.test_case "basis action" `Quick test_unroll_basis;
          Alcotest.test_case "shape" `Quick test_unroll_shape;
          Alcotest.test_case "morph" `Quick test_morph;
          Alcotest.test_case "lemma 1 pair" `Quick test_shared_pair;
        ] );
      ( "mct",
        [
          Alcotest.test_case "ancillas needed" `Quick test_ancillas_needed;
          Alcotest.test_case "v-chain" `Slow test_v_chain;
          Alcotest.test_case "errors" `Quick test_v_chain_errors;
          Alcotest.test_case "dirty staircase" `Slow test_dirty_staircase;
          Alcotest.test_case "dirty errors" `Quick test_dirty_staircase_errors;
        ] );
      ( "pass",
        [
          Alcotest.test_case "clifford/barenco" `Quick test_pass_clifford_barenco;
          Alcotest.test_case "ancilla sharing" `Quick test_pass_ancilla_sharing;
          Alcotest.test_case "ancilla semantics" `Quick
            test_pass_ancilla_semantics;
          Alcotest.test_case "reduce mct" `Quick test_reduce_mct;
          Alcotest.test_case "rejects non-X" `Quick test_pass_rejects;
          Alcotest.test_case "no toffoli unchanged" `Quick
            test_pass_no_toffoli_unchanged;
          Alcotest.test_case "expand leaves conditioned" `Quick
            test_expand_cv_leaves_conditioned;
          Alcotest.test_case "substitutions lint clean" `Quick
            test_substitutions_lint_clean;
        ] );
      ( "peephole",
        [
          Alcotest.test_case "cancels" `Quick test_peephole_cancels;
          Alcotest.test_case "inverse pair" `Quick test_peephole_inverse_pair;
          Alcotest.test_case "blocked" `Quick test_peephole_blocked;
          Alcotest.test_case "across disjoint" `Quick
            test_peephole_across_disjoint;
          Alcotest.test_case "cascade" `Quick test_peephole_cascade;
          Alcotest.test_case "conditioned" `Quick test_peephole_conditioned;
          Alcotest.test_case "merge rotations" `Quick test_merge_rotations;
          QCheck_alcotest.to_alcotest prop_peephole_preserves_unitary;
          QCheck_alcotest.to_alcotest prop_merge_preserves_unitary;
        ] );
    ]
