(* Property tests pinning down exactly which lattice laws the
   relational domain satisfies.

   The rank join is a sound upper bound but not a least upper bound
   (incomparable minimal upper bounds exist), so associativity is
   deliberately scoped: the partition component is tested for exact
   associativity, the full join only for mutual upper-bounding.  The
   row (GF(2) affine) component is tested through its canonical
   reduced-echelon form and the facts it implies. *)

open Circuit

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Gf2: canonical reduced echelon form                                 *)

let width = 10

let vectors_gen =
  QCheck2.Gen.(list_size (int_range 0 8) (int_bound ((1 lsl width) - 1)))

(* reduced is a fixpoint: re-reducing a canonical basis changes nothing *)
let prop_reduced_fixpoint =
  QCheck2.Test.make ~name:"gf2 reduced is a fixpoint" ~count:300 vectors_gen
    (fun vs ->
      let basis = Gf2.reduced ~width vs in
      Gf2.reduced ~width basis = basis)

(* canonical form is invariant under elementary row operations, so
   structural equality decides span equality *)
let prop_reduced_canonical =
  QCheck2.Test.make ~name:"gf2 reduced is canonical under row ops" ~count:300
    QCheck2.Gen.(pair vectors_gen (int_bound 1000))
    (fun (vs, salt) ->
      let basis = Gf2.reduced ~width vs in
      let mangled =
        (* xor random pairs of rows together and shuffle: same span *)
        match vs with
        | [] -> []
        | v0 :: _ ->
            List.rev
              (List.mapi (fun i v -> if (salt + i) mod 2 = 0 then v lxor v0 else v) vs)
            @ [ v0 ]
      in
      Gf2.reduced ~width mangled = basis)

let prop_in_span =
  QCheck2.Test.make ~name:"gf2 inputs lie in the span of their reduction"
    ~count:300 vectors_gen (fun vs ->
      let basis = Gf2.reduced ~width vs in
      List.for_all (Gf2.in_span ~width basis) vs
      && List.for_all
           (fun v -> List.for_all (fun w -> Gf2.in_span ~width basis (v lxor w)) vs)
           vs)

(* ------------------------------------------------------------------ *)
(* Random abstract states                                              *)

let nq = 4
let nb = 2
let gate_pool = Gate.[ H; X; Y; Z; S; Sdg; T; Tdg ]

let instr_gen =
  QCheck2.Gen.(
    oneof
      [
        map2
          (fun g q -> Instruction.Unitary (Instruction.app g q))
          (oneofl gate_pool)
          (int_range 0 (nq - 1));
        map3
          (fun g c t ->
            if c = t then Instruction.Unitary (Instruction.app g t)
            else Instruction.Unitary (Instruction.app ~controls:[ c ] g t))
          (oneofl Gate.[ X; Z ])
          (int_range 0 (nq - 1))
          (int_range 0 (nq - 1));
        map3
          (fun c1 t g ->
            let c2 = (c1 + 1) mod nq in
            if t = c1 || t = c2 then Instruction.Unitary (Instruction.app g t)
            else
              Instruction.Unitary (Instruction.app ~controls:[ c1; c2 ] Gate.X t))
          (int_range 0 (nq - 1))
          (int_range 0 (nq - 1))
          (oneofl gate_pool);
        map2
          (fun q b -> Instruction.Measure { qubit = q; bit = b })
          (int_range 0 (nq - 1))
          (int_range 0 (nb - 1));
        map (fun q -> Instruction.Reset q) (int_range 0 (nq - 1));
        map3
          (fun g q b ->
            Instruction.Conditioned
              (Instruction.cond_bit b true, Instruction.app g q))
          (oneofl gate_pool)
          (int_range 0 (nq - 1))
          (int_range 0 (nb - 1));
      ])

let instrs_gen = QCheck2.Gen.(list_size (int_range 0 24) instr_gen)

let state_of instrs =
  List.fold_left Lint.Reldom.step
    (Lint.Reldom.init ~num_qubits:nq ~num_bits:nb)
    instrs

let partition d = List.map fst (Lint.Reldom.blocks d)

let implications d =
  ( List.init nq (Lint.Reldom.implied_qubit d),
    List.init nb (Lint.Reldom.implied_bit d) )

(* ------------------------------------------------------------------ *)
(* Join laws                                                           *)

let prop_join_comm =
  QCheck2.Test.make ~name:"join commutative" ~count:200
    QCheck2.Gen.(pair instrs_gen instrs_gen)
    (fun (s1, s2) ->
      let a = state_of s1 and b = state_of s2 in
      Lint.Reldom.equal (Lint.Reldom.join a b) (Lint.Reldom.join b a))

let prop_join_idempotent =
  QCheck2.Test.make ~name:"join idempotent" ~count:200 instrs_gen (fun s ->
      let a = state_of s in
      Lint.Reldom.equal (Lint.Reldom.join a a) a)

let prop_join_upper_bound =
  QCheck2.Test.make ~name:"join is an upper bound" ~count:200
    QCheck2.Gen.(pair instrs_gen instrs_gen)
    (fun (s1, s2) ->
      let a = state_of s1 and b = state_of s2 in
      let j = Lint.Reldom.join a b in
      Lint.Reldom.leq a j && Lint.Reldom.leq b j)

(* exact associativity holds on the partition component; the full
   domain is only associative up to mutual upper-bounding because the
   rank join is not a least upper bound *)
let prop_join_assoc_scoped =
  QCheck2.Test.make ~name:"join associative (partition exact, rank bounded)"
    ~count:150
    QCheck2.Gen.(triple instrs_gen instrs_gen instrs_gen)
    (fun (s1, s2, s3) ->
      let a = state_of s1 and b = state_of s2 and c = state_of s3 in
      let x = Lint.Reldom.join (Lint.Reldom.join a b) c in
      let y = Lint.Reldom.join a (Lint.Reldom.join b c) in
      partition x = partition y
      && implications x = implications y
      && Lint.Reldom.leq a x && Lint.Reldom.leq b x && Lint.Reldom.leq c x
      && Lint.Reldom.leq a y && Lint.Reldom.leq b y && Lint.Reldom.leq c y)

(* the affine rows of a join hold in both arguments: facts proved on
   both sides survive the Zassenhaus span intersection *)
let prop_join_keeps_common_facts =
  QCheck2.Test.make ~name:"join keeps facts common to both sides" ~count:200
    QCheck2.Gen.(pair instrs_gen instrs_gen)
    (fun (s1, s2) ->
      let a = state_of s1 and b = state_of s2 in
      let j = Lint.Reldom.join a b in
      let qubit_ok q =
        match (Lint.Reldom.implied_qubit a q, Lint.Reldom.implied_qubit b q) with
        | Some va, Some vb when va = vb ->
            Lint.Reldom.implied_qubit j q = Some va
        | Some _, Some _ | Some _, None | None, Some _ | None, None -> true
      in
      let bit_ok bi =
        match (Lint.Reldom.implied_bit a bi, Lint.Reldom.implied_bit b bi) with
        | Some va, Some vb when va = vb -> Lint.Reldom.implied_bit j bi = Some va
        | Some _, Some _ | Some _, None | None, Some _ | None, None -> true
      in
      List.for_all qubit_ok (List.init nq Fun.id)
      && List.for_all bit_ok (List.init nb Fun.id))

(* ------------------------------------------------------------------ *)
(* Transfer monotonicity                                               *)

let prop_transfer_monotone =
  QCheck2.Test.make ~name:"transfer monotone" ~count:200
    QCheck2.Gen.(triple instrs_gen instrs_gen instr_gen)
    (fun (s1, s2, i) ->
      let a = state_of s1 in
      let b = Lint.Reldom.join a (state_of s2) in
      (* a <= b by the upper-bound law; stepping must preserve it *)
      Lint.Reldom.leq (Lint.Reldom.step a i) (Lint.Reldom.step b i))

let prop_leq_reflexive_on_join_chain =
  QCheck2.Test.make ~name:"leq reflexive and transitive up the join chain"
    ~count:150
    QCheck2.Gen.(triple instrs_gen instrs_gen instrs_gen)
    (fun (s1, s2, s3) ->
      let a = state_of s1 in
      let ab = Lint.Reldom.join a (state_of s2) in
      let abc = Lint.Reldom.join ab (state_of s3) in
      Lint.Reldom.leq a a && Lint.Reldom.leq a ab && Lint.Reldom.leq ab abc
      && Lint.Reldom.leq a abc)

(* ------------------------------------------------------------------ *)
(* Bound sanity                                                        *)

let prop_bound_within_register =
  QCheck2.Test.make ~name:"support bound within the register" ~count:300
    instrs_gen (fun s ->
      let d = state_of s in
      let k = Lint.Reldom.log2_support_bound d in
      0 <= k && k <= nq)

let test_init_facts () =
  let d = Lint.Reldom.init ~num_qubits:nq ~num_bits:nb in
  check_bool "tracked" true (Lint.Reldom.tracked d);
  check_bool "bound 0" true (Lint.Reldom.log2_support_bound d = 0);
  for q = 0 to nq - 1 do
    check_bool "qubit zero" true (Lint.Reldom.implied_qubit d q = Some false)
  done;
  for b = 0 to nb - 1 do
    check_bool "bit zero" true (Lint.Reldom.implied_bit d b = Some false)
  done

let test_parity_relation () =
  (* H 0; CX 0 1: x0 = x1 on every branch, one rank-1 block of {0,1} *)
  let d =
    state_of
      [
        Instruction.Unitary (Instruction.app Gate.H 0);
        Instruction.Unitary (Instruction.app ~controls:[ 0 ] Gate.X 1);
      ]
  in
  check_bool "bound 1" true (Lint.Reldom.log2_support_bound d = 1);
  check_bool "entangled" true
    (List.exists (fun (m, _) -> m = [ 0; 1 ]) (partition d |> List.map (fun m -> (m, ()))));
  (* measuring either qubit pins the other through x0 = x1 *)
  let m = Lint.Reldom.step d (Instruction.Measure { qubit = 0; bit = 0 }) in
  check_bool "measure splits" true
    (List.for_all (fun (ms, _) -> List.length ms = 1) (Lint.Reldom.blocks m))

let () =
  Alcotest.run "reldom"
    [
      ( "gf2",
        List.map QCheck_alcotest.to_alcotest
          [ prop_reduced_fixpoint; prop_reduced_canonical; prop_in_span ] );
      ( "join",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_join_comm;
            prop_join_idempotent;
            prop_join_upper_bound;
            prop_join_assoc_scoped;
            prop_join_keeps_common_facts;
          ] );
      ( "transfer",
        List.map QCheck_alcotest.to_alcotest
          [ prop_transfer_monotone; prop_leq_reflexive_on_join_chain ] );
      ( "bounds",
        Alcotest.test_case "init facts" `Quick test_init_facts
        :: Alcotest.test_case "parity relation" `Quick test_parity_relation
        :: List.map QCheck_alcotest.to_alcotest [ prop_bound_within_register ]
      );
    ]
