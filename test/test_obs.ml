(* Telemetry layer: runtime switch semantics, span nesting, the
   Backend.Prefix observability invariants, determinism of counter
   totals across domain counts, and well-formedness of the Chrome-trace
   and metrics-JSON exports (checked with a small JSON parser below). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let hist_pairs = Alcotest.(list (pair int int))

let check_hist msg a b =
  Alcotest.check hist_pairs msg (Sim.Runner.to_list a) (Sim.Runner.to_list b)

let dj_and () =
  Algorithms.Dj.circuit (Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND"))

let dyn2_and () =
  (Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2 (dj_and ()))
    .Dqc.Transform.circuit

let terminal_only () =
  Sim.Measurement_plan.instrument Sim.Measurement_plan.measure_all (dj_and ())

(* ------------------------------------------------------------------ *)
(* A tiny JSON parser, enough to validate the exporters' output.  The
   library deliberately only emits JSON; parsing back into [Obs.Json.t]
   here keeps the round-trip check honest. *)

exception Parse_error of string

let parse_json (s : string) : Obs.Json.t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
          | Some 'u' ->
              advance ();
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff));
              go ()
          | Some c -> advance (); Buffer.add_char b c; go ()
          | None -> fail "dangling escape")
      | Some c -> advance (); Buffer.add_char b c; go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Obs.Json.Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Obs.Json.Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some 'n' -> literal "null" Obs.Json.Null
    | Some 't' -> literal "true" (Obs.Json.Bool true)
    | Some 'f' -> literal "false" (Obs.Json.Bool false)
    | Some '"' -> Obs.Json.String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Obs.Json.List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Obs.Json.List (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obs.Json.Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obs.Json.Obj (fields [])
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obs.Json.Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_list = function Obs.Json.List l -> l | _ -> []

let get_string = function Obs.Json.String s -> Some s | _ -> None

let get_num = function
  | Obs.Json.Int i -> Some (float_of_int i)
  | Obs.Json.Float f -> Some f
  | _ -> None

(* ------------------------------------------------------------------ *)
(* JSON emitter                                                       *)

let test_json_emitter () =
  let open Obs.Json in
  check_string "escaping"
    {|{"a":"line\nbreak \"q\"","b":[1,-2.5,null,true]}|}
    (to_string
       (Obj
          [
            ("a", String "line\nbreak \"q\"");
            ("b", List [ Int 1; Float (-2.5); Null; Bool true ]);
          ]));
  check_string "nan is null" "null" (to_string (Float Float.nan));
  check_string "inf is null" "null" (to_string (Float Float.infinity));
  (* round-trip through the test parser *)
  let v =
    Obj [ ("k", List [ Int 3; String "x\twith\ttabs"; Obj [] ]) ]
  in
  check_bool "round-trip" true (parse_json (to_string v) = v)

(* ------------------------------------------------------------------ *)
(* Runtime switch and buffering semantics                             *)

let test_disabled_noops () =
  check_bool "off by default" false (Obs.enabled ());
  (* all record operations are no-ops, and with_span still runs f *)
  Obs.incr "ghost";
  Obs.set_gauge "ghost.gauge" 1.0;
  check_int "with_span passes through" 42 (Obs.with_span "ghost.span" (fun () -> 42));
  let c, () = Obs.with_collector (fun () -> ()) in
  check_int "nothing recorded while off" 0 (Obs.Collector.counter c "ghost");
  check_bool "no ghost gauge" true (Obs.Collector.gauge c "ghost.gauge" = None);
  check_int "no ghost span" 0 (List.length (Obs.Collector.spans c))

let test_buffering_and_flush () =
  let c = Obs.install () in
  Fun.protect ~finally:Obs.uninstall (fun () ->
      Obs.incr "a";
      Obs.incr ~n:4 "a";
      (* records sit in the per-domain buffer until a flush *)
      check_int "buffered, not yet merged" 0 (Obs.Collector.counter c "a");
      Obs.flush ();
      check_int "merged on flush" 5 (Obs.Collector.counter c "a");
      check_int "untouched counter is 0" 0 (Obs.Collector.counter c "b");
      Obs.set_gauge "g" 1.0;
      Obs.set_gauge "g" 2.5;
      Obs.flush ();
      check_bool "gauge last-write-wins" true
        (Obs.Collector.gauge c "g" = Some 2.5))

let test_span_nesting () =
  let c, () =
    Obs.with_collector (fun () ->
        Obs.with_span "outer" (fun () ->
            Obs.with_span "inner" ~attrs:[ ("k", "v") ] (fun () -> ())))
  in
  match Obs.Collector.spans c with
  | [ outer; inner ] ->
      check_string "outer first" "outer" outer.Obs.Collector.name;
      check_string "inner second" "inner" inner.Obs.Collector.name;
      check_int "outer depth" 0 outer.depth;
      check_int "inner depth" 1 inner.depth;
      check_bool "inner contained" true
        (Int64.add inner.start_ns inner.dur_ns
        <= Int64.add outer.start_ns outer.dur_ns
        && inner.start_ns >= outer.start_ns);
      check_bool "attrs kept" true (inner.attrs = [ ("k", "v") ]);
      check_bool "wall time = outer" true
        (Obs.Collector.root_wall_ns c = outer.dur_ns)
  | spans ->
      Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_survives_exception () =
  let c, () =
    Obs.with_collector (fun () ->
        (try Obs.with_span "boom" (fun () -> failwith "no") with
        | Failure _ -> ()))
  in
  check_int "span recorded despite raise" 1 (List.length (Obs.Collector.spans c))

(* ------------------------------------------------------------------ *)
(* Case-insensitive policy parsing                                    *)

let test_policy_case_insensitive () =
  let parses s p = check_bool s true (Sim.Backend.policy_of_string s = Some p) in
  parses "DENSE" Sim.Backend.Statevector_dense;
  parses "Auto" Sim.Backend.Auto;
  parses "STABILIZER" Sim.Backend.Stabilizer;
  parses "CHP" Sim.Backend.Stabilizer;
  parses "Exact-Branch" Sim.Backend.Exact_branch;
  check_bool "unknown still rejected" true
    (Sim.Backend.policy_of_string "QPU" = None)

(* ------------------------------------------------------------------ *)
(* Backend.Prefix observability invariants                            *)

let shots = 256

let run_dense ?prefix_cache ?(domains = 1) c =
  Sim.Backend.run ~policy:Sim.Backend.Statevector_dense ~seed:13 ~domains
    ?prefix_cache ~shots c

let test_prefix_fraction () =
  check_bool "terminal-only measures -> 1.0" true
    (Sim.Backend.Prefix.fraction (terminal_only ()) = 1.0);
  let f = Sim.Backend.Prefix.fraction (dyn2_and ()) in
  check_bool "mid-circuit measures -> inside (0,1)" true (f > 0.0 && f < 1.0)

let test_prefix_hits_equal_shots () =
  let c, _h = Obs.with_collector (fun () -> run_dense (dyn2_and ())) in
  check_int "hit per shot" shots (Obs.Collector.counter c "backend.prefix.hit");
  check_int "no misses with cache on" 0
    (Obs.Collector.counter c "backend.prefix.miss");
  check_int "backend.shots" shots (Obs.Collector.counter c "backend.shots");
  check_int "engine tagged" 1 (Obs.Collector.counter c "backend.run.dense");
  check_bool "fraction gauge matches Prefix.fraction" true
    (Obs.Collector.gauge c "backend.prefix.fraction"
    = Some (Sim.Backend.Prefix.fraction (dyn2_and ())))

let test_prefix_misses_with_cache_off () =
  let c, _h =
    Obs.with_collector (fun () -> run_dense ~prefix_cache:false (dyn2_and ()))
  in
  check_int "miss per shot" shots (Obs.Collector.counter c "backend.prefix.miss");
  check_int "no hits with cache off" 0
    (Obs.Collector.counter c "backend.prefix.hit")

let test_prefix_fraction_gauge_terminal () =
  let c, _h = Obs.with_collector (fun () -> run_dense (terminal_only ())) in
  check_bool "fraction gauge is 1.0" true
    (Obs.Collector.gauge c "backend.prefix.fraction" = Some 1.0)

(* ------------------------------------------------------------------ *)
(* Determinism across domain counts                                   *)

let engine_counters c =
  (* per-block shot/wall entries depend on how the shot range was
     sharded; everything else must be independent of the domain count *)
  List.filter
    (fun (name, _) ->
      not (String.starts_with ~prefix:"parallel.block." name))
    (Obs.Collector.counters c)
  |> List.sort compare

let test_counters_domain_independent () =
  let run domains = Obs.with_collector (fun () -> run_dense ~domains (dyn2_and ())) in
  let c1, h1 = run 1 in
  let c4, h4 = run 4 in
  check_hist "histograms identical 1 vs 4 domains" h1 h4;
  Alcotest.(check (list (pair string int)))
    "counter totals identical 1 vs 4 domains" (engine_counters c1)
    (engine_counters c4);
  check_int "every shot tallied once" shots
    (Obs.Collector.counter c1 "parallel.shots");
  (* per-domain histograms merge bucket-wise, and shot timing samples
     on the global shot index, so totals are domain-count-independent
     too *)
  let sampled = shots / Sim.Parallel.shot_sample_every in
  let hist_count c name =
    match Obs.Collector.histogram c name with
    | Some h -> Obs.Histogram.count h
    | None -> 0
  in
  check_int "shot histogram count 1 domain" sampled
    (hist_count c1 "parallel.shot");
  check_int "shot histogram count 4 domains" sampled
    (hist_count c4 "parallel.shot")

let test_histogram_unchanged_by_telemetry () =
  let bare = run_dense (dyn2_and ()) in
  let _c, observed = Obs.with_collector (fun () -> run_dense (dyn2_and ())) in
  check_hist "telemetry does not perturb sampling" bare observed

(* ------------------------------------------------------------------ *)
(* Engine counters from the simulators                                *)

let test_simulator_counters () =
  let c, _h = Obs.with_collector (fun () -> run_dense (dyn2_and ())) in
  check_bool "compiled ops counted" true
    (Obs.Collector.counter c "sim.program.ops" > 0);
  check_bool "fused gates counted" true
    (Obs.Collector.counter c "sim.program.fused" > 0);
  check_bool "collapses counted" true
    (Obs.Collector.counter c "sim.statevector.measure" > 0)

let test_exact_counters () =
  let c, _d =
    Obs.with_collector (fun () -> Sim.Exact.register_distribution (dyn2_and ()))
  in
  check_bool "leaves counted" true (Obs.Collector.counter c "sim.exact.leaves" > 0);
  check_bool "enumeration span" true
    (List.exists
       (fun (s : Obs.Collector.span) -> s.name = "exact.enumerate")
       (Obs.Collector.spans c))

(* ------------------------------------------------------------------ *)
(* Pipeline spans                                                     *)

let test_pipeline_spans () =
  let c, _out =
    Obs.with_collector (fun () -> Dqc.Pipeline.compile (dj_and ()))
  in
  let stats = Obs.Collector.span_stats c in
  let has name = List.mem_assoc name stats in
  List.iter
    (fun name -> check_bool name true (has name))
    [
      "pipeline.compile"; "pipeline.pass.prepare"; "pipeline.pass.transform";
      "pipeline.pass.equivalence";
    ];
  check_bool "per-pass run counters" true
    (Obs.Collector.counter c "pipeline.pass.transform.runs" > 0);
  let compile =
    List.find
      (fun (s : Obs.Collector.span) -> s.name = "pipeline.compile")
      (Obs.Collector.spans c)
  in
  check_int "compile is a root span" 0 compile.depth;
  List.iter
    (fun (s : Obs.Collector.span) ->
      if s.name <> "pipeline.compile" && String.starts_with ~prefix:"pipeline." s.name
      then check_int (s.name ^ " nested under compile") 1 s.depth)
    (Obs.Collector.spans c)

(* ------------------------------------------------------------------ *)
(* Exporters                                                          *)

let collect_workload () =
  Obs.with_collector (fun () ->
      let out = Dqc.Pipeline.compile (dj_and ()) in
      ignore
        (Sim.Backend.run ~policy:Sim.Backend.Statevector_dense ~seed:5 ~shots:64
           out.Dqc.Pipeline.circuit))

let test_chrome_trace_export () =
  let c, () = collect_workload () in
  let json = parse_json (Obs.Chrome_trace.to_string c) in
  let events = get_list (Option.get (member "traceEvents" json)) in
  check_bool "has events" true (events <> []);
  let complete =
    List.filter (fun e -> member "ph" e |> Option.map get_string = Some (Some "X")) events
  in
  let names =
    List.filter_map (fun e -> Option.bind (member "name" e) get_string) complete
  in
  List.iter
    (fun n -> check_bool (n ^ " present") true (List.mem n names))
    [ "pipeline.compile"; "pipeline.pass.transform"; "backend.run" ];
  (* every complete event carries non-negative relative timestamps *)
  List.iter
    (fun e ->
      let num k = Option.get (Option.bind (member k e) get_num) in
      check_bool "ts >= 0" true (num "ts" >= 0.0);
      check_bool "dur >= 0" true (num "dur" >= 0.0))
    complete;
  (* nesting by containment: a stage sits inside pipeline.compile *)
  let find name =
    List.find
      (fun e -> Option.bind (member "name" e) get_string = Some name)
      complete
  in
  let span_of e =
    let num k = Option.get (Option.bind (member k e) get_num) in
    (num "ts", num "ts" +. num "dur")
  in
  let t0, t1 = span_of (find "pipeline.compile") in
  let u0, u1 = span_of (find "pipeline.pass.transform") in
  check_bool "transform contained in compile" true (u0 >= t0 && u1 <= t1);
  check_bool "thread metadata" true
    (List.exists
       (fun e -> member "ph" e |> Option.map get_string = Some (Some "M"))
       events)

let test_metrics_json_export () =
  let c, () = collect_workload () in
  let json = parse_json (Obs.Metrics_json.to_string c) in
  check_bool "schema" true
    (member "schema" json |> Option.map get_string
    = Some (Some Obs.Metrics_json.schema));
  let counters = Option.get (member "counters" json) in
  check_bool "backend.shots exported" true
    (member "backend.shots" counters |> Option.map get_num = Some (Some 64.0));
  let spans = Option.get (member "spans" json) in
  let compile = Option.get (member "pipeline.compile" spans) in
  check_bool "span count exported" true
    (member "count" compile |> Option.map get_num = Some (Some 1.0));
  check_bool "mean_ns exported" true
    (Option.bind (member "mean_ns" compile) get_num <> None)

(* ------------------------------------------------------------------ *)
(* Library JSON parser (Obs.Json.parse — used by the bench gate)      *)

let test_json_library_parser () =
  let v =
    Obs.Json.Obj
      [
        ("s", Obs.Json.String "line\nbreak \"q\"");
        ("l", Obs.Json.List [ Obs.Json.Int 3; Obs.Json.Float (-2.5) ]);
        ("n", Obs.Json.Null);
        ("b", Obs.Json.Bool false);
        ("o", Obs.Json.Obj []);
      ]
  in
  check_bool "round-trip through Obs.Json.parse" true
    (Obs.Json.parse (Obs.Json.to_string v) = v);
  check_bool "malformed input raises Parse_error" true
    (match Obs.Json.parse "{\"a\": 1," with
    | exception Obs.Json.Parse_error _ -> true
    | _ -> false);
  check_bool "trailing garbage raises Parse_error" true
    (match Obs.Json.parse "1 2" with
    | exception Obs.Json.Parse_error _ -> true
    | _ -> false);
  check_bool "member lookup" true
    (Obs.Json.member "b" v = Some (Obs.Json.Bool false));
  check_bool "member on non-object" true
    (Obs.Json.member "x" Obs.Json.Null = None);
  check_bool "to_float_opt coerces ints" true
    (Obs.Json.to_float_opt (Obs.Json.Int 7) = Some 7.0)

(* ------------------------------------------------------------------ *)
(* Histograms                                                         *)

let hist_of samples =
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.record h) samples;
  h

let sample_gen =
  QCheck2.Gen.(list_size (int_range 1 400) (int_bound 5_000_000))

let prop_hist_merge_split =
  QCheck2.Test.make ~name:"merge of split samples = histogram of the whole"
    ~count:100
    QCheck2.Gen.(pair sample_gen (int_bound 1000))
    (fun (samples, cut) ->
      let module H = Obs.Histogram in
      let k = cut mod (List.length samples + 1) in
      let left = List.filteri (fun i _ -> i < k) samples in
      let right = List.filteri (fun i _ -> i >= k) samples in
      let whole = hist_of samples in
      let merged = H.merge (hist_of left) (hist_of right) in
      H.count merged = H.count whole
      && H.min_value merged = H.min_value whole
      && H.max_value merged = H.max_value whole
      && H.sum merged = H.sum whole
      && List.for_all
           (fun q -> H.quantile merged q = H.quantile whole q)
           [ 0.5; 0.9; 0.99; 0.999 ])

let prop_hist_quantile_bound =
  QCheck2.Test.make
    ~name:"quantile estimate within the documented error bound" ~count:100
    sample_gen
    (fun samples ->
      let h = hist_of samples in
      let arr = Array.of_list (List.sort compare samples) in
      let n = Array.length arr in
      List.for_all
        (fun q ->
          let rank =
            max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))
          in
          let true_q = arr.(rank) in
          let est = Obs.Histogram.quantile h q in
          est <= true_q
          && float_of_int true_q
             <= (float_of_int est *. (1. +. Obs.Histogram.error_bound)) +. 1.)
        [ 0.5; 0.9; 0.99 ])

let test_histogram_basics () =
  let module H = Obs.Histogram in
  let h = H.create () in
  check_bool "fresh is empty" true (H.is_empty h);
  check_int "empty quantile" 0 (H.quantile h 0.5);
  List.iter (H.record h) [ 10; 20; 30; 40 ];
  check_int "count" 4 (H.count h);
  check_int "min exact" 10 (H.min_value h);
  check_int "max exact" 40 (H.max_value h);
  (* values below 64 ns land in exact buckets *)
  check_int "small-value p50 exact" 20 (H.p50 h);
  check_bool "mean" true (H.mean h = 25.0);
  H.record h (-5);
  check_int "negative clamps to 0" 0 (H.min_value h)

let test_runtime_histograms () =
  let c, () = collect_workload () in
  (match Obs.Collector.histogram c "parallel.shot" with
  | Some h ->
      check_int "one record per sampled shot"
        (64 / Sim.Parallel.shot_sample_every)
        (Obs.Histogram.count h)
  | None -> Alcotest.fail "parallel.shot histogram missing");
  check_bool "per-op-class histograms recorded" true
    (List.exists
       (fun (name, h) ->
         String.starts_with ~prefix:"sim.program.op." name
         && Obs.Histogram.count h > 0)
       (Obs.Collector.histograms c));
  (* with_span feeds the histogram of the same name *)
  match Obs.Collector.histogram c "pipeline.compile" with
  | Some h -> check_int "span-fed histogram count" 1 (Obs.Histogram.count h)
  | None -> Alcotest.fail "pipeline.compile histogram missing"

(* ------------------------------------------------------------------ *)
(* Gauge merge rules                                                  *)

let test_gauge_rules () =
  let module C = Obs.Collector in
  C.set_gauge_rule "t.min" C.Min;
  C.set_gauge_rule "t.sum" C.Sum;
  C.set_gauge_rule "t.last" C.Last;
  check_bool "default rule is Max" true (C.gauge_rule "t.max" = C.Max);
  let c = C.create () in
  let absorb gauges = C.absorb c ~spans:[] ~counters:[] ~gauges in
  absorb [ ("t.max", 1.0); ("t.min", 1.0); ("t.sum", 1.0); ("t.last", 1.0) ];
  absorb [ ("t.max", 3.0); ("t.min", 3.0); ("t.sum", 3.0); ("t.last", 3.0) ];
  absorb [ ("t.max", 2.0); ("t.min", 2.0); ("t.sum", 2.0); ("t.last", 2.0) ];
  check_bool "max keeps the peak" true (C.gauge c "t.max" = Some 3.0);
  check_bool "min keeps the floor" true (C.gauge c "t.min" = Some 1.0);
  check_bool "sum accumulates" true (C.gauge c "t.sum" = Some 6.0);
  check_bool "last takes flush order" true (C.gauge c "t.last" = Some 2.0)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                    *)

let test_flight_ring_wraparound () =
  let t, () =
    Obs.Flight.with_recorder ~capacity:8 (fun () ->
        for i = 0 to 19 do
          Obs.Flight.record ~kind:"tick" [ ("i", Obs.Json.Int i) ]
        done)
  in
  check_int "recorded counts overwrites" 20 (Obs.Flight.recorded t);
  check_int "dropped = recorded - capacity" 12 (Obs.Flight.dropped t);
  let evs = Obs.Flight.events t in
  check_int "capacity survivors" 8 (List.length evs);
  Alcotest.(check (list int))
    "survivors are the most recent, in sequence order"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun (e : Obs.Flight.event) -> e.seq) evs);
  check_bool "disarmed after with_recorder" false (Obs.Flight.enabled ())

let test_flight_json_shape () =
  let t, () =
    Obs.Flight.with_recorder ~capacity:4 (fun () ->
        Obs.Flight.record ~kind:"a" [ ("x", Obs.Json.Int 1) ];
        (* a data field named like a header field must not shadow it *)
        Obs.Flight.record ~kind:"b" [ ("kind", Obs.Json.String "shadow") ])
  in
  let json = Obs.Json.parse (Obs.Flight.to_string t) in
  check_bool "schema" true
    (Obs.Json.member "schema" json
    = Some (Obs.Json.String Obs.Flight.schema));
  check_bool "no drops" true
    (Obs.Json.member "dropped" json = Some (Obs.Json.Int 0));
  match Obs.Json.member "events" json with
  | Some (Obs.Json.List [ a; b ]) ->
      check_bool "first kind" true
        (Obs.Json.member "kind" a = Some (Obs.Json.String "a"));
      check_bool "data field kept" true
        (Obs.Json.member "x" a = Some (Obs.Json.Int 1));
      check_bool "header kind wins over data field" true
        (Obs.Json.member "kind" b = Some (Obs.Json.String "b"));
      check_bool "timestamps relative to arming" true
        (Obs.Json.to_float_opt (Option.get (Obs.Json.member "t_us" a))
        |> Option.get >= 0.0)
  | Some _ | None -> Alcotest.fail "expected exactly 2 events"

let unitary g t = Circuit.Instruction.Unitary (Circuit.Instruction.app g t)

(* h; measure; x; measure — the canonical use-after-measure circuit the
   lint gate rejects *)
let use_after_measure () =
  Circuit.Circ.create ~roles:[| Circuit.Circ.Data |] ~num_bits:2
    [
      unitary Circuit.Gate.H 0;
      Circuit.Instruction.Measure { qubit = 0; bit = 0 };
      unitary Circuit.Gate.X 0;
      Circuit.Instruction.Measure { qubit = 0; bit = 1 };
    ]

let test_flight_dump_on_raise () =
  let path = Filename.temp_file "dqc_flight_test" ".json" in
  let options = Dqc.Pipeline.Options.(default |> with_passes [ "lint" ]) in
  let raised =
    try
      let _t, _out =
        Obs.Flight.with_recorder ~dump_path:path (fun () ->
            Dqc.Pipeline.compile ~options (use_after_measure ()))
      in
      false
    with Lint.Rejected _ -> true
  in
  check_bool "pipeline raised Lint.Rejected" true raised;
  let json = Obs.Json.read ~path in
  Sys.remove path;
  check_bool "dump schema" true
    (Obs.Json.member "schema" json
    = Some (Obs.Json.String Obs.Flight.schema));
  let kinds =
    match Obs.Json.member "events" json with
    | Some (Obs.Json.List evs) ->
        List.filter_map
          (fun e -> Option.bind (Obs.Json.member "kind" e) Obs.Json.to_string_opt)
          evs
    | Some _ | None -> []
  in
  List.iter
    (fun k -> check_bool ("dump has " ^ k) true (List.mem k kinds))
    [ "pass.begin"; "lint.diagnostic"; "pipeline.raised" ];
  (* the raise is the last event the ring saw *)
  check_string "raise recorded last" "pipeline.raised"
    (List.nth kinds (List.length kinds - 1))

(* ------------------------------------------------------------------ *)
(* Metrics v2                                                         *)

let test_metrics_json_v2 () =
  let c, () = collect_workload () in
  let json = parse_json (Obs.Metrics_json.to_string c) in
  check_bool "schema is v2" true
    (member "schema" json |> Option.map get_string
    = Some (Some "dqc.obs.metrics/2"));
  (* v1 compatibility: every v1 section survives with its shape *)
  List.iter
    (fun k -> check_bool (k ^ " section present") true (member k json <> None))
    [ "counters"; "gauges"; "spans"; "wall_ns" ];
  check_bool "error bound exported" true
    (Option.bind (member "quantile_error_bound" json) get_num
    = Some Obs.Histogram.error_bound);
  let hists = Option.get (member "histograms" json) in
  let shot = Option.get (member "parallel.shot" hists) in
  check_bool "per-shot count" true
    (member "count" shot |> Option.map get_num
    = Some (Some (float_of_int (64 / Sim.Parallel.shot_sample_every))));
  let n k = Option.get (Option.bind (member k shot) get_num) in
  check_bool "percentile ladder is monotone" true
    (n "min_ns" <= n "p50_ns"
    && n "p50_ns" <= n "p90_ns"
    && n "p90_ns" <= n "p99_ns"
    && n "p99_ns" <= n "p999_ns"
    && n "p999_ns" <= n "max_ns")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [ Alcotest.test_case "emitter + round-trip" `Quick test_json_emitter ] );
      ( "runtime",
        [
          Alcotest.test_case "disabled no-ops" `Quick test_disabled_noops;
          Alcotest.test_case "buffering and flush" `Quick
            test_buffering_and_flush;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span survives exception" `Quick
            test_span_survives_exception;
        ] );
      ( "policy",
        [
          Alcotest.test_case "case-insensitive" `Quick
            test_policy_case_insensitive;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "fraction" `Quick test_prefix_fraction;
          Alcotest.test_case "hits equal shots" `Quick
            test_prefix_hits_equal_shots;
          Alcotest.test_case "misses with cache off" `Quick
            test_prefix_misses_with_cache_off;
          Alcotest.test_case "fraction gauge terminal" `Quick
            test_prefix_fraction_gauge_terminal;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "counters domain-independent" `Quick
            test_counters_domain_independent;
          Alcotest.test_case "histogram unchanged by telemetry" `Quick
            test_histogram_unchanged_by_telemetry;
        ] );
      ( "engines",
        [
          Alcotest.test_case "simulator counters" `Quick test_simulator_counters;
          Alcotest.test_case "exact counters" `Quick test_exact_counters;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "stage spans" `Quick test_pipeline_spans ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace_export;
          Alcotest.test_case "metrics json" `Quick test_metrics_json_export;
          Alcotest.test_case "metrics json v2" `Quick test_metrics_json_v2;
        ] );
      ( "json-parser",
        [
          Alcotest.test_case "library parser" `Quick test_json_library_parser;
        ] );
      ( "histogram",
        [
          QCheck_alcotest.to_alcotest prop_hist_merge_split;
          QCheck_alcotest.to_alcotest prop_hist_quantile_bound;
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "runtime histograms" `Quick
            test_runtime_histograms;
        ] );
      ( "gauges",
        [ Alcotest.test_case "merge rules" `Quick test_gauge_rules ] );
      ( "flight",
        [
          Alcotest.test_case "ring wraparound" `Quick
            test_flight_ring_wraparound;
          Alcotest.test_case "json shape" `Quick test_flight_json_shape;
          Alcotest.test_case "dump on raise" `Quick test_flight_dump_on_raise;
        ] );
    ]
