open Circuit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let roles n = Array.make n Circ.Data

(* ------------------------------------------------------------------ *)
(* Bits                                                               *)

let test_bits () =
  check_bool "get" true (Sim.Bits.get 0b101 2);
  check_bool "get clear" false (Sim.Bits.get 0b101 1);
  check_int "set" 0b111 (Sim.Bits.set 0b101 1 true);
  check_int "clear" 0b001 (Sim.Bits.set 0b101 2 false);
  Alcotest.(check string) "to_string bit0 first" "101"
    (Sim.Bits.to_string ~width:3 0b101);
  check_int "of_string" 0b101 (Sim.Bits.of_string "101");
  Alcotest.check_raises "bad char"
    (Invalid_argument "Bits.of_string: non-binary character") (fun () ->
      ignore (Sim.Bits.of_string "10x"))

let prop_bits_roundtrip =
  QCheck2.Test.make ~name:"bits string roundtrip" ~count:200
    QCheck2.Gen.(int_bound 0xFFFF)
    (fun v ->
      Sim.Bits.of_string (Sim.Bits.to_string ~width:16 v) = v)

(* ------------------------------------------------------------------ *)
(* Statevector                                                        *)

let test_initial_state () =
  let st = Sim.Statevector.create 3 ~num_bits:2 in
  check_float "P(|000>)" 1. (Sim.Statevector.probabilities st).(0);
  check_int "register" 0 (Sim.Statevector.register st)

let test_hadamard () =
  let st = Sim.Statevector.create 1 ~num_bits:0 in
  Sim.Statevector.apply_gate st Gate.H 0;
  check_float "P0" 0.5 (Sim.Statevector.probabilities st).(0);
  check_float "P1" 0.5 (Sim.Statevector.probabilities st).(1)

let test_bell () =
  let st = Sim.Statevector.create 2 ~num_bits:0 in
  Sim.Statevector.apply_gate st Gate.H 0;
  Sim.Statevector.apply_app st (Instruction.app ~controls:[ 0 ] Gate.X 1);
  let p = Sim.Statevector.probabilities st in
  check_float "P(00)" 0.5 p.(0);
  check_float "P(11)" 0.5 p.(3);
  check_float "P(01)" 0. p.(1)

let test_toffoli_app () =
  let st = Sim.Statevector.create 3 ~num_bits:0 in
  Sim.Statevector.apply_gate st Gate.X 0;
  Sim.Statevector.apply_gate st Gate.X 1;
  Sim.Statevector.apply_app st (Instruction.app ~controls:[ 0; 1 ] Gate.X 2);
  check_float "P(111)" 1. (Sim.Statevector.probabilities st).(7)

let test_measure_collapse () =
  let st = Sim.Statevector.create 1 ~num_bits:1 in
  Sim.Statevector.apply_gate st Gate.H 0;
  (* random = 0.9 > 0.5 picks outcome 0 (random < p1 selects 1) *)
  let outcome = Sim.Statevector.measure ~random:0.9 st ~qubit:0 ~bit:0 in
  check_bool "outcome 0" false outcome;
  check_float "collapsed" 1. (Sim.Statevector.probabilities st).(0);
  check_bool "register" false (Sim.Statevector.get_bit st 0);
  let st1 = Sim.Statevector.create 1 ~num_bits:1 in
  Sim.Statevector.apply_gate st1 Gate.H 0;
  let outcome1 = Sim.Statevector.measure ~random:0.1 st1 ~qubit:0 ~bit:0 in
  check_bool "outcome 1" true outcome1;
  check_float "collapsed to 1" 1. (Sim.Statevector.probabilities st1).(1)

let test_project_zero_raises () =
  let st = Sim.Statevector.create 1 ~num_bits:0 in
  Alcotest.check_raises "zero branch"
    (Sim.Statevector.Zero_probability_branch { qubit = 0; outcome = true })
    (fun () -> ignore (Sim.Statevector.project st 0 true))

let test_reset () =
  let st = Sim.Statevector.create 1 ~num_bits:0 in
  Sim.Statevector.apply_gate st Gate.X 0;
  Sim.Statevector.reset ~random:0.0 st 0;
  check_float "reset to |0>" 1. (Sim.Statevector.probabilities st).(0)

let test_conditioned_execution () =
  let st = Sim.Statevector.create 1 ~num_bits:1 in
  let app = Instruction.app Gate.X 0 in
  let random () = 0.5 in
  Sim.Statevector.run_instruction ~random st
    (Instruction.Conditioned (Instruction.cond_bit 0 true, app));
  check_float "not fired" 1. (Sim.Statevector.probabilities st).(0);
  Sim.Statevector.set_bit st 0 true;
  Sim.Statevector.run_instruction ~random st
    (Instruction.Conditioned (Instruction.cond_bit 0 true, app));
  check_float "fired" 1. (Sim.Statevector.probabilities st).(1)

let test_apply_kraus1_errors () =
  let st = Sim.Statevector.create 1 ~num_bits:0 in
  Alcotest.check_raises "shape"
    (Invalid_argument "Statevector.apply_kraus1: not a 1-qubit operator")
    (fun () -> ignore (Sim.Statevector.apply_kraus1 st (Linalg.Cmat.identity 4) 0));
  (* annihilating |0> entirely *)
  let k = Linalg.Cmat.of_reim_lists [ [ (0., 0.); (1., 0.) ]; [ (0., 0.); (0., 0.) ] ] in
  Alcotest.check_raises "zero norm"
    (Invalid_argument "Statevector.apply_kraus1: zero-norm result")
    (fun () -> Sim.Statevector.apply_kraus1 st k 0)

let test_measure_all_distribution () =
  let b = Circ.Builder.make ~roles:(roles 2) ~num_bits:0 () in
  Circ.Builder.x b 1;
  let d = Sim.Exact.measure_all_distribution (Circ.Builder.build b) in
  check_float "basis state" 1. (Sim.Dist.prob d 0b10)

let test_too_many_qubits () =
  Alcotest.check_raises "25 qubits"
    (Sim.State.Dense_cap_exceeded { qubits = 25; max_qubits = 24 }) (fun () ->
      ignore (Sim.Statevector.create 25 ~num_bits:0))

(* ------------------------------------------------------------------ *)
(* Dist                                                               *)

let test_dist_basics () =
  let d = Sim.Dist.create ~width:2 [ (0, 0.25); (3, 0.75) ] in
  check_float "prob" 0.25 (Sim.Dist.prob d 0);
  check_float "absent" 0. (Sim.Dist.prob d 1);
  check_float "total" 1. (Sim.Dist.total d);
  Alcotest.(check (list int)) "support" [ 0; 3 ] (Sim.Dist.support d);
  let o, p = Sim.Dist.mode d in
  check_int "mode" 3 o;
  check_float "mode prob" 0.75 p

let test_dist_normalize () =
  let d = Sim.Dist.create ~width:1 [ (0, 2.); (1, 2.) ] in
  let n = Sim.Dist.normalize d in
  check_float "normalized" 0.5 (Sim.Dist.prob n 0);
  Alcotest.check_raises "zero mass" (Invalid_argument "Dist.normalize: zero mass")
    (fun () -> ignore (Sim.Dist.normalize (Sim.Dist.create ~width:1 [])))

let test_dist_tv () =
  let a = Sim.Dist.create ~width:1 [ (0, 1.) ] in
  let b = Sim.Dist.create ~width:1 [ (1, 1.) ] in
  check_float "disjoint" 1. (Sim.Dist.tv_distance a b);
  check_float "self" 0. (Sim.Dist.tv_distance a a);
  let c = Sim.Dist.create ~width:1 [ (0, 0.5); (1, 0.5) ] in
  check_float "half" 0.5 (Sim.Dist.tv_distance a c)

let test_dist_marginal () =
  let d = Sim.Dist.create ~width:2 [ (0b00, 0.5); (0b11, 0.5) ] in
  let m = Sim.Dist.marginal ~bits:[ 1 ] d in
  check_float "marginal 0" 0.5 (Sim.Dist.prob m 0);
  check_float "marginal 1" 0.5 (Sim.Dist.prob m 1);
  let swapped = Sim.Dist.marginal ~bits:[ 1; 0 ] d in
  check_float "joint preserved" 0.5 (Sim.Dist.prob swapped 0b11)

let test_dist_map_outcome () =
  let d = Sim.Dist.create ~width:2 [ (0, 0.5); (1, 0.3); (2, 0.2) ] in
  let collapsed = Sim.Dist.map_outcome ~width':1 (fun o -> o land 1) d in
  check_float "merged" 0.7 (Sim.Dist.prob collapsed 0)

let dist_gen =
  (* pad every weight so the total mass is always positive *)
  QCheck2.Gen.(
    map
      (fun ps ->
        let padded = List.map (fun (o, p) -> (o, p +. 1e-3)) ps in
        Sim.Dist.normalize (Sim.Dist.create ~width:3 padded))
      (list_size (int_range 1 8)
         (pair (int_bound 7) (float_bound_inclusive 1.))))

let prop_tv_symmetric =
  QCheck2.Test.make ~name:"tv symmetric" ~count:100
    QCheck2.Gen.(pair dist_gen dist_gen)
    (fun (a, b) ->
      abs_float (Sim.Dist.tv_distance a b -. Sim.Dist.tv_distance b a) < 1e-9)

let prop_tv_bounds =
  QCheck2.Test.make ~name:"tv in [0,1] for normalized" ~count:100
    QCheck2.Gen.(pair dist_gen dist_gen)
    (fun (a, b) ->
      let tv = Sim.Dist.tv_distance a b in
      tv >= -1e-9 && tv <= 1. +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Exact                                                              *)

let bell_circuit () =
  let b = Circ.Builder.make ~roles:(roles 2) ~num_bits:2 () in
  Circ.Builder.h b 0;
  Circ.Builder.cx b 0 1;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.measure b ~qubit:1 ~bit:1;
  Circ.Builder.build b

let test_exact_bell () =
  let d = Sim.Exact.register_distribution (bell_circuit ()) in
  check_float "P(00)" 0.5 (Sim.Dist.prob d 0b00);
  check_float "P(11)" 0.5 (Sim.Dist.prob d 0b11);
  check_float "P(01)" 0. (Sim.Dist.prob d 0b01)

let test_exact_leaves () =
  let leaves = Sim.Exact.leaves (bell_circuit ()) in
  check_int "two branches" 2 (List.length leaves);
  check_float "mass" 1.
    (List.fold_left (fun acc l -> acc +. l.Sim.Exact.probability) 0. leaves)

let test_exact_reset_branches () =
  (* H then reset: both branches end in |0>, register untouched *)
  let b = Circ.Builder.make ~roles:(roles 1) ~num_bits:1 () in
  Circ.Builder.h b 0;
  Circ.Builder.reset b 0;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  let d = Sim.Exact.register_distribution (Circ.Builder.build b) in
  check_float "always 0" 1. (Sim.Dist.prob d 0)

(* Quantum teleportation: the canonical dynamic-circuit integration
   test.  Teleport Ry(0.7)|0> from qubit 0 to qubit 2 using mid-circuit
   measurement and classically controlled corrections. *)
let test_teleportation () =
  let theta = 0.7 in
  let b = Circ.Builder.make ~roles:(roles 3) ~num_bits:3 () in
  Circ.Builder.gate b (Gate.Ry theta) 0;
  Circ.Builder.h b 1;
  Circ.Builder.cx b 1 2;
  Circ.Builder.cx b 0 1;
  Circ.Builder.h b 0;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.measure b ~qubit:1 ~bit:1;
  Circ.Builder.conditioned b ~bit:1 Gate.X 2;
  Circ.Builder.conditioned b ~bit:0 Gate.Z 2;
  Circ.Builder.measure b ~qubit:2 ~bit:2;
  let d = Sim.Exact.register_distribution (Circ.Builder.build b) in
  let marg = Sim.Dist.marginal ~bits:[ 2 ] d in
  let expected_p1 = sin (theta /. 2.) ** 2. in
  check_float "teleported P(1)" expected_p1 (Sim.Dist.prob marg 1)

let test_measured_distribution_widens () =
  let c = Circ.create ~roles:(roles 1) ~num_bits:0
      [ Instruction.Unitary (Instruction.app Gate.X 0) ] in
  let d = Sim.Exact.measured_distribution ~measures:[ (0, 2) ] c in
  check_float "bit 2 set" 1. (Sim.Dist.prob d 0b100)

(* ------------------------------------------------------------------ *)
(* Unitary                                                            *)

let test_unitary_identity () =
  let c = Circ.create ~roles:(roles 2) ~num_bits:0 [] in
  check_bool "identity" true
    (Linalg.Cmat.approx_equal (Sim.Unitary.of_circuit c) (Linalg.Cmat.identity 4))

let test_unitary_cx () =
  let m = Sim.Unitary.of_app ~n:2 (Instruction.app ~controls:[ 0 ] Gate.X 1) in
  (* |01> (q0=1) -> |11> i.e. column 1 has a 1 in row 3 *)
  check_bool "cx column" true
    (Linalg.Complex_ext.approx_equal (Linalg.Cmat.get m 3 1) Complex.one);
  check_bool "column 0 fixed" true
    (Linalg.Complex_ext.approx_equal (Linalg.Cmat.get m 0 0) Complex.one)

let test_unitary_rejects_measure () =
  let c =
    Circ.create ~roles:(roles 1) ~num_bits:1
      [ Instruction.Measure { qubit = 0; bit = 0 } ]
  in
  Alcotest.check_raises "measure"
    (Invalid_argument "Unitary.of_circuit: non-unitary instruction") (fun () ->
      ignore (Sim.Unitary.of_circuit c))

let test_unitary_global_phase () =
  (* Z X Z X = -I: equivalent to identity only up to phase *)
  let i g t = Instruction.Unitary (Instruction.app g t) in
  let c =
    Circ.create ~roles:(roles 1) ~num_bits:0
      [ i Gate.Z 0; i Gate.X 0; i Gate.Z 0; i Gate.X 0 ]
  in
  let id = Circ.create ~roles:(roles 1) ~num_bits:0 [] in
  check_bool "up to phase" true (Sim.Unitary.equivalent c id);
  check_bool "not exact" false (Sim.Unitary.equivalent ~up_to_phase:false c id)

(* ------------------------------------------------------------------ *)
(* Runner                                                             *)

let test_runner_deterministic () =
  let b = Circ.Builder.make ~roles:(roles 1) ~num_bits:1 () in
  Circ.Builder.x b 0;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  let h = Sim.Runner.run_shots ~shots:100 (Circ.Builder.build b) in
  check_int "all ones" 100 (Sim.Runner.count h 1);
  check_float "frequency" 1. (Sim.Runner.frequency h 1)

let test_runner_bell_stats () =
  let h = Sim.Runner.run_shots ~seed:42 ~shots:2000 (bell_circuit ()) in
  check_int "shots" 2000 (Sim.Runner.shots h);
  check_bool "both outcomes seen" true
    (Sim.Runner.count h 0b00 > 800 && Sim.Runner.count h 0b11 > 800);
  check_int "no mixed outcomes" 0
    (Sim.Runner.count h 0b01 + Sim.Runner.count h 0b10);
  check_float "to_dist total" 1. (Sim.Dist.total (Sim.Runner.to_dist h))

let test_runner_seed_reproducible () =
  let h1 = Sim.Runner.run_shots ~seed:7 ~shots:50 (bell_circuit ()) in
  let h2 = Sim.Runner.run_shots ~seed:7 ~shots:50 (bell_circuit ()) in
  check_bool "same counts" true (Sim.Runner.to_list h1 = Sim.Runner.to_list h2)

let test_collect () =
  let h = Sim.Runner.collect ~width:1 ~shots:10 (fun () -> 1) in
  check_int "collected" 10 (Sim.Runner.count h 1)

(* ------------------------------------------------------------------ *)
(* Noise                                                              *)

let test_noise_ideal_matches_exact () =
  let c = bell_circuit () in
  let h = Sim.Noise.run_shots ~model:Sim.Noise.ideal ~shots:500 c in
  let tv =
    Sim.Dist.tv_distance (Sim.Runner.to_dist h) (Sim.Exact.register_distribution c)
  in
  check_bool "close to exact" true (tv < 0.1)

let test_noise_validate () =
  let bad = { Sim.Noise.ideal with Sim.Noise.p_depol1 = 1.5 } in
  Alcotest.check_raises "bad prob"
    (Invalid_argument "Noise: p_depol1 = 1.5 outside [0,1]") (fun () ->
      Sim.Noise.validate bad)

let test_noise_meas_flip () =
  let b = Circ.Builder.make ~roles:(roles 1) ~num_bits:1 () in
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  let model = { Sim.Noise.ideal with Sim.Noise.p_meas_flip = 1.0 } in
  let h = Sim.Noise.run_shots ~model ~shots:50 (Circ.Builder.build b) in
  check_int "always flipped" 50 (Sim.Runner.count h 1)

let test_noise_reset_flip () =
  let b = Circ.Builder.make ~roles:(roles 1) ~num_bits:1 () in
  Circ.Builder.reset b 0;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  let model = { Sim.Noise.ideal with Sim.Noise.p_reset_flip = 1.0 } in
  let h = Sim.Noise.run_shots ~model ~shots:50 (Circ.Builder.build b) in
  check_int "reset leaves |1>" 50 (Sim.Runner.count h 1)

let test_feedforward_dephasing_selective () =
  (* conditioned gate on a basis-state target: dephasing harmless;
     on a superposed qubit measured in X basis: visible *)
  let mk ~superposed =
    let b = Circ.Builder.make ~roles:(roles 1) ~num_bits:2 () in
    if superposed then Circ.Builder.h b 0;
    (* bit 1 is never written: the conditioned gate never fires, but
       its feed-forward latency penalty is still charged *)
    Circ.Builder.conditioned b ~bit:1 Gate.X 0;
    if superposed then Circ.Builder.h b 0;
    Circ.Builder.measure b ~qubit:0 ~bit:0;
    Circ.Builder.build b
  in
  let model = { Sim.Noise.ideal with Sim.Noise.p_feedforward_z = 0.5 } in
  let h_basis = Sim.Noise.run_shots ~model ~shots:400 (mk ~superposed:false) in
  let h_plus = Sim.Noise.run_shots ~model ~shots:400 (mk ~superposed:true) in
  check_int "basis state unaffected" 400
    (Sim.Runner.count h_basis 0b00 + Sim.Runner.count h_basis 0b10);
  check_bool "superposition damaged" true (Sim.Runner.count h_plus 0b01 > 100)

let test_noise_expected_outcome_probability () =
  let b = Circ.Builder.make ~roles:(roles 1) ~num_bits:1 () in
  Circ.Builder.x b 0;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  let p =
    Sim.Noise.expected_outcome_probability ~model:Sim.Noise.ideal ~shots:50
      ~expected:1 (Circ.Builder.build b)
  in
  check_float "ideal deterministic" 1. p

(* ------------------------------------------------------------------ *)
(* Density                                                            *)

let test_density_matches_exact () =
  (* ideal density-matrix evolution = exact branching, including
     mid-circuit measurement, reset and conditioned gates *)
  let b = Circ.Builder.make ~roles:(roles 2) ~num_bits:2 () in
  Circ.Builder.h b 0;
  Circ.Builder.cx b 0 1;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.conditioned b ~bit:0 Gate.X 1;
  Circ.Builder.reset b 0;
  Circ.Builder.measure b ~qubit:1 ~bit:1;
  let c = Circ.Builder.build b in
  let exact = Sim.Exact.register_distribution c in
  let dens = Sim.Density.register_distribution (Sim.Density.run c) in
  check_bool "distributions equal" true (Sim.Dist.approx_equal exact dens)

let test_density_trace_preserved () =
  let c = bell_circuit () in
  let st = Sim.Density.run ~model:Sim.Noise.default c in
  check_float "trace 1" 1. (Sim.Density.trace st)

let test_density_purity () =
  (* depolarizing noise mixes the state *)
  let b = Circ.Builder.make ~roles:(roles 1) ~num_bits:0 () in
  Circ.Builder.h b 0;
  let c = Circ.Builder.build b in
  let pure = Sim.Density.purity (Sim.Density.run c) in
  check_float "pure" 1. pure;
  let model = { Sim.Noise.ideal with Sim.Noise.p_depol1 = 0.5 } in
  let mixed = Sim.Density.purity (Sim.Density.run ~model c) in
  check_bool "mixed" true (mixed < 0.99)

let test_density_meas_flip_exact () =
  let b = Circ.Builder.make ~roles:(roles 1) ~num_bits:1 () in
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  let c = Circ.Builder.build b in
  let model = { Sim.Noise.ideal with Sim.Noise.p_meas_flip = 0.25 } in
  let d = Sim.Density.register_distribution (Sim.Density.run ~model c) in
  check_float "flip probability exact" 0.25 (Sim.Dist.prob d 1)

let test_density_reset_flip_exact () =
  let b = Circ.Builder.make ~roles:(roles 1) ~num_bits:1 () in
  Circ.Builder.reset b 0;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  let c = Circ.Builder.build b in
  let model = { Sim.Noise.ideal with Sim.Noise.p_reset_flip = 0.1 } in
  let d = Sim.Density.register_distribution (Sim.Density.run ~model c) in
  check_float "residual excitation" 0.1 (Sim.Dist.prob d 1)

let test_density_matches_trajectories () =
  (* the two noise engines implement the same channels *)
  let b = Circ.Builder.make ~roles:(roles 2) ~num_bits:2 () in
  Circ.Builder.h b 0;
  Circ.Builder.cx b 0 1;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.conditioned b ~bit:0 Gate.X 1;
  Circ.Builder.measure b ~qubit:1 ~bit:1;
  let c = Circ.Builder.build b in
  let model =
    { Sim.Noise.default with Sim.Noise.p_feedforward_z = 0.1 }
  in
  let exact = Sim.Density.register_distribution (Sim.Density.run ~model c) in
  let sampled =
    Sim.Runner.to_dist (Sim.Noise.run_shots ~seed:11 ~model ~shots:40000 c)
  in
  check_bool "within sampling error" true
    (Sim.Dist.tv_distance exact sampled < 0.02)

let test_density_qubit_cap () =
  Alcotest.check_raises "9 qubits"
    (Invalid_argument "Density.create: 9 qubits (max 8)") (fun () ->
      ignore
        (Sim.Density.run
           (Circ.create ~roles:(roles 9) ~num_bits:0 [])))

(* ------------------------------------------------------------------ *)
(* Stabilizer                                                         *)

let test_stab_bell () =
  let h = Sim.Stabilizer.run_shots ~shots:1000 (bell_circuit ()) in
  check_int "no mixed outcomes" 0
    (Sim.Runner.count h 0b01 + Sim.Runner.count h 0b10);
  check_bool "both corners seen" true
    (Sim.Runner.count h 0b00 > 300 && Sim.Runner.count h 0b11 > 300)

let test_stab_deterministic () =
  let b = Circ.Builder.make ~roles:(roles 2) ~num_bits:2 () in
  Circ.Builder.x b 0;
  Circ.Builder.cx b 0 1;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.measure b ~qubit:1 ~bit:1;
  let h = Sim.Stabilizer.run_shots ~shots:50 (Circ.Builder.build b) in
  check_int "always 11" 50 (Sim.Runner.count h 0b11)

let test_stab_conditioned_and_reset () =
  (* measure a |1> qubit, reset it, use the bit to flip another *)
  let b = Circ.Builder.make ~roles:(roles 2) ~num_bits:2 () in
  Circ.Builder.x b 0;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.reset b 0;
  Circ.Builder.conditioned b ~bit:0 Gate.X 1;
  Circ.Builder.measure b ~qubit:1 ~bit:1;
  let h = Sim.Stabilizer.run_shots ~shots:50 (Circ.Builder.build b) in
  check_int "bit forwarded" 50 (Sim.Runner.count h 0b11)

let test_stab_bv_at_scale () =
  (* 60-bit BV: statevector impossible, tableau instant; the 2-qubit
     dynamic circuit recovers the hidden string deterministically *)
  let n = 60 in
  let s = String.init n (fun k -> if k mod 3 = 0 then '1' else '0') in
  let c = Algorithms.Bv.circuit s in
  let r = Dqc.Transform.transform c in
  check_bool "dynamic is clifford" true (Sim.Stabilizer.supports r.circuit);
  let rng = Random.State.make [| 1 |] in
  let st = Sim.Stabilizer.run ~rng r.circuit in
  check_int "hidden string recovered" (Algorithms.Bv.expected_outcome s)
    (Sim.Stabilizer.register st)

let test_stab_unsupported () =
  let c =
    Circ.create ~roles:(roles 1) ~num_bits:0
      [ Instruction.Unitary (Instruction.app Gate.T 0) ]
  in
  check_bool "supports is false" false (Sim.Stabilizer.supports c);
  check_bool "run raises" true
    (try
       ignore (Sim.Stabilizer.run ~rng:(Random.State.make [| 0 |]) c);
       false
     with Sim.Stabilizer.Unsupported _ -> true)

let clifford_gen =
  QCheck2.Gen.(
    list_size (int_range 1 15)
      (oneof
         [
           map2
             (fun g q -> Instruction.Unitary (Instruction.app g q))
             (oneofl Gate.[ H; X; Y; Z; S; Sdg ])
             (int_range 0 2);
           map2
             (fun a d ->
               let b = (a + 1 + d) mod 3 in
               Instruction.Unitary (Instruction.app ~controls:[ a ] Gate.X b))
             (int_range 0 2) (int_range 0 1);
           map2
             (fun q b -> Instruction.Measure { qubit = q; bit = b })
             (int_range 0 2) (int_range 0 2);
         ]))

let prop_stabilizer_matches_exact =
  QCheck2.Test.make
    ~name:"stabilizer shots match the exact distribution" ~count:20
    clifford_gen
    (fun instrs ->
      let c =
        Circ.create ~roles:(roles 3) ~num_bits:3
          (instrs
          @ List.init 3 (fun q -> Instruction.Measure { qubit = q; bit = q }))
      in
      let d_exact = Sim.Exact.register_distribution c in
      let d_stab =
        Sim.Runner.to_dist (Sim.Stabilizer.run_shots ~shots:3000 c)
      in
      Sim.Dist.tv_distance d_exact d_stab < 0.08)

let test_sampler_frequencies () =
  let d = Sim.Dist.create ~width:2 [ (0, 0.7); (3, 0.2); (1, 0.1) ] in
  let h = Sim.Runner.sample_dist ~seed:5 ~shots:50000 d in
  check_bool "outcome 0" true (abs_float (Sim.Runner.frequency h 0 -. 0.7) < 0.02);
  check_bool "outcome 3" true (abs_float (Sim.Runner.frequency h 3 -. 0.2) < 0.02);
  check_bool "outcome 1" true (abs_float (Sim.Runner.frequency h 1 -. 0.1) < 0.02)

let test_sampler_deterministic_dist () =
  let d = Sim.Dist.create ~width:3 [ (5, 1.0) ] in
  let h = Sim.Runner.sample_dist ~shots:100 d in
  check_int "point mass" 100 (Sim.Runner.count h 5);
  Alcotest.check_raises "empty" (Invalid_argument "Dist.sampler: empty distribution")
    (fun () -> ignore (Sim.Dist.sampler (Sim.Dist.create ~width:1 [])))

let test_sampler_matches_circuit_shots () =
  (* sampling the exact distribution is equivalent in law to rerunning
     the circuit *)
  let c = bell_circuit () in
  let exact = Sim.Exact.register_distribution c in
  let h = Sim.Runner.sample_dist ~seed:3 ~shots:20000 exact in
  check_bool "close" true
    (Sim.Dist.tv_distance (Sim.Runner.to_dist h) exact < 0.02)

let test_density_feedforward_scope () =
  (* `All_qubits charges the dephasing to a bystander superposed qubit
     that `Target leaves alone *)
  let b = Circ.Builder.make ~roles:(roles 2) ~num_bits:2 () in
  Circ.Builder.h b 1;
  Circ.Builder.conditioned b ~bit:1 Gate.X 0;
  (* bit 1 never written: the gate never fires *)
  Circ.Builder.h b 1;
  Circ.Builder.measure b ~qubit:1 ~bit:0;
  let c = Circ.Builder.build b in
  let run scope =
    let model =
      { Sim.Noise.ideal with Sim.Noise.p_feedforward_z = 0.4; feedforward_scope = scope }
    in
    Sim.Dist.prob
      (Sim.Density.register_distribution (Sim.Density.run ~model c))
      0b1
  in
  check_float "target scope leaves bystander pure" 0. (run `Target);
  check_float "all-qubits scope dephases it" 0.4 (run `All_qubits)

let test_stabilizer_cz_and_s () =
  (* CZ and S are in the supported Clifford set: build an S-conjugated
     bell pair and check correlations *)
  let b = Circ.Builder.make ~roles:(roles 2) ~num_bits:2 () in
  Circ.Builder.h b 0;
  Circ.Builder.h b 1;
  Circ.Builder.cgate b Gate.Z 0 1;
  Circ.Builder.h b 1;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.measure b ~qubit:1 ~bit:1;
  let c = Circ.Builder.build b in
  check_bool "supported" true (Sim.Stabilizer.supports c);
  let h = Sim.Stabilizer.run_shots ~shots:500 c in
  (* H CZ H = CX: bell-type correlations *)
  check_int "no mixed" 0 (Sim.Runner.count h 0b01 + Sim.Runner.count h 0b10)

let test_amp_damp_decay () =
  (* |1> decays: after k gates with damping gamma, P(1) = (1-gamma)^k *)
  let gamma = 0.2 in
  let model = { Sim.Noise.ideal with Sim.Noise.p_amp_damp = gamma } in
  let b = Circ.Builder.make ~roles:(roles 1) ~num_bits:1 () in
  Circ.Builder.x b 0;
  Circ.Builder.z b 0;
  Circ.Builder.z b 0;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  let c = Circ.Builder.build b in
  let d = Sim.Density.register_distribution (Sim.Density.run ~model c) in
  check_float "density decay" ((1. -. gamma) ** 3.) (Sim.Dist.prob d 1);
  (* trajectories converge to the same value *)
  let h = Sim.Noise.run_shots ~seed:2 ~model ~shots:40000 c in
  check_bool "trajectories agree" true
    (abs_float (Sim.Runner.frequency h 1 -. ((1. -. gamma) ** 3.)) < 0.01)

let test_amp_damp_nonunital () =
  (* damping is non-unital: it creates |0> population from the
     maximally mixed state, unlike depolarizing *)
  let gamma = 0.5 in
  let model = { Sim.Noise.ideal with Sim.Noise.p_amp_damp = gamma } in
  let b = Circ.Builder.make ~roles:(roles 1) ~num_bits:1 () in
  Circ.Builder.h b 0;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  let c = Circ.Builder.build b in
  let d = Sim.Density.register_distribution (Sim.Density.run ~model c) in
  (* |+> damped: P(1) = (1-gamma)/2 < 1/2 *)
  check_float "biased towards ground" ((1. -. gamma) /. 2.) (Sim.Dist.prob d 1)

(* ------------------------------------------------------------------ *)
(* Observable                                                         *)

let test_observable_bell () =
  let st = Sim.Statevector.create 2 ~num_bits:0 in
  Sim.Statevector.apply_gate st Gate.H 0;
  Sim.Statevector.apply_app st (Instruction.app ~controls:[ 0 ] Gate.X 1);
  check_float "<Z0>" 0. (Sim.Observable.expectation st (Sim.Observable.z 0));
  check_float "<Z0 Z1>" 1. (Sim.Observable.expectation st (Sim.Observable.zz 0 1));
  let xx =
    [ { Sim.Observable.coeff = 1.; paulis = [ (0, Sim.Observable.X); (1, Sim.Observable.X) ] } ]
  in
  check_float "<X0 X1>" 1. (Sim.Observable.expectation st xx)

let test_observable_combinators () =
  let st = Sim.Statevector.create 1 ~num_bits:0 in
  let o = Sim.Observable.add (Sim.Observable.z 0) (Sim.Observable.scale 2. (Sim.Observable.x 0)) in
  (* |0>: <Z> = 1, <X> = 0 *)
  check_float "combined" 1. (Sim.Observable.expectation st o);
  Sim.Statevector.apply_gate st Gate.H 0;
  (* |+>: <Z> = 0, <X> = 1 *)
  check_float "after H" 2. (Sim.Observable.expectation st o)

let test_observable_phase_kickback_invariant () =
  (* the answer qubit of a DJ oracle stays in the <X> = -1 eigenstate
     through the whole computation — the invariant that makes the
     oracle act purely as phase kickback on the data qubits *)
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "OR") in
  let dj = Algorithms.Dj.circuit o in
  let leaves = Sim.Exact.leaves dj in
  check_float "<X_answer> = -1" (-1.)
    (Sim.Observable.expectation_leaves leaves (Sim.Observable.x 2));
  (* and the same holds in the 2-qubit dynamic realization *)
  let r = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2 dj in
  let dyn_leaves = Sim.Exact.leaves r.circuit in
  check_float "dynamic <X_answer> = -1" (-1.)
    (Sim.Observable.expectation_leaves dyn_leaves (Sim.Observable.x 1))

let test_observable_errors () =
  let st = Sim.Statevector.create 1 ~num_bits:0 in
  check_bool "out of range" true
    (try
       ignore (Sim.Observable.expectation st (Sim.Observable.z 5));
       false
     with Invalid_argument _ -> true);
  let repeated =
    [ { Sim.Observable.coeff = 1.; paulis = [ (0, Sim.Observable.Z); (0, Sim.Observable.X) ] } ]
  in
  check_bool "repeated qubit" true
    (try
       ignore (Sim.Observable.expectation st repeated);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Mitigation                                                         *)

let test_confusion_columns () =
  let t = Sim.Mitigation.ideal_confusion ~p_flip:0.1 ~bits:3 in
  for prepared = 0 to 7 do
    let total = ref 0. in
    for observed = 0 to 7 do
      total := !total +. Sim.Mitigation.confusion t ~observed ~prepared
    done;
    check_float "column mass" 1. !total
  done;
  check_float "diagonal" (0.9 ** 3.)
    (Sim.Mitigation.confusion t ~observed:5 ~prepared:5);
  check_float "one flip" (0.1 *. 0.9 *. 0.9)
    (Sim.Mitigation.confusion t ~observed:4 ~prepared:5)

let test_calibrate_matches_analytic () =
  let p = 0.1 in
  let model = { Sim.Noise.ideal with Sim.Noise.p_meas_flip = p } in
  let cal =
    Sim.Mitigation.calibrate ~shots:20000 ~model ~qubits:[ 0; 1 ] ~num_qubits:2 ()
  in
  let analytic = Sim.Mitigation.ideal_confusion ~p_flip:p ~bits:2 in
  for prepared = 0 to 3 do
    for observed = 0 to 3 do
      check_bool "entries close" true
        (abs_float
           (Sim.Mitigation.confusion cal ~observed ~prepared
           -. Sim.Mitigation.confusion analytic ~observed ~prepared)
        < 0.02)
    done
  done

let test_mitigation_recovers () =
  let s = "1011" in
  let r = Dqc.Transform.transform (Algorithms.Bv.circuit s) in
  let p = 0.06 in
  let model = { Sim.Noise.ideal with Sim.Noise.p_meas_flip = p } in
  let noisy =
    Sim.Runner.to_dist (Sim.Noise.run_shots ~model ~shots:20000 r.circuit)
  in
  let ideal = Sim.Exact.register_distribution r.circuit in
  let cal = Sim.Mitigation.ideal_confusion ~p_flip:p ~bits:4 in
  let mitigated = Sim.Mitigation.apply cal noisy in
  let before = Sim.Dist.tv_distance noisy ideal in
  let after = Sim.Dist.tv_distance mitigated ideal in
  check_bool "noise visible" true (before > 0.1);
  check_bool "10x improvement" true (after < before /. 10.)

let test_mitigation_errors () =
  let t = Sim.Mitigation.ideal_confusion ~p_flip:0.1 ~bits:2 in
  let wrong = Sim.Dist.create ~width:3 [ (0, 1.) ] in
  check_bool "width mismatch" true
    (try
       ignore (Sim.Mitigation.apply t wrong);
       false
     with Invalid_argument _ -> true);
  (* p = 0.5 makes the confusion matrix singular *)
  let singular = Sim.Mitigation.ideal_confusion ~p_flip:0.5 ~bits:1 in
  check_bool "singular detected" true
    (try
       ignore
         (Sim.Mitigation.apply singular
            (Sim.Dist.create ~width:1 [ (0, 0.5); (1, 0.5) ]));
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "sim"
    [
      ( "bits",
        [
          Alcotest.test_case "basics" `Quick test_bits;
          QCheck_alcotest.to_alcotest prop_bits_roundtrip;
        ] );
      ( "statevector",
        [
          Alcotest.test_case "initial" `Quick test_initial_state;
          Alcotest.test_case "hadamard" `Quick test_hadamard;
          Alcotest.test_case "bell" `Quick test_bell;
          Alcotest.test_case "toffoli app" `Quick test_toffoli_app;
          Alcotest.test_case "measure collapse" `Quick test_measure_collapse;
          Alcotest.test_case "project zero raises" `Quick test_project_zero_raises;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "conditioned" `Quick test_conditioned_execution;
          Alcotest.test_case "qubit cap" `Quick test_too_many_qubits;
          Alcotest.test_case "kraus errors" `Quick test_apply_kraus1_errors;
          Alcotest.test_case "measure all" `Quick test_measure_all_distribution;
        ] );
      ( "dist",
        [
          Alcotest.test_case "basics" `Quick test_dist_basics;
          Alcotest.test_case "normalize" `Quick test_dist_normalize;
          Alcotest.test_case "tv" `Quick test_dist_tv;
          Alcotest.test_case "marginal" `Quick test_dist_marginal;
          Alcotest.test_case "map_outcome" `Quick test_dist_map_outcome;
          QCheck_alcotest.to_alcotest prop_tv_symmetric;
          QCheck_alcotest.to_alcotest prop_tv_bounds;
        ] );
      ( "exact",
        [
          Alcotest.test_case "bell" `Quick test_exact_bell;
          Alcotest.test_case "leaves" `Quick test_exact_leaves;
          Alcotest.test_case "reset branches" `Quick test_exact_reset_branches;
          Alcotest.test_case "teleportation" `Quick test_teleportation;
          Alcotest.test_case "measured widens" `Quick
            test_measured_distribution_widens;
        ] );
      ( "unitary",
        [
          Alcotest.test_case "identity" `Quick test_unitary_identity;
          Alcotest.test_case "cx" `Quick test_unitary_cx;
          Alcotest.test_case "rejects measure" `Quick test_unitary_rejects_measure;
          Alcotest.test_case "global phase" `Quick test_unitary_global_phase;
        ] );
      ( "runner",
        [
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "bell stats" `Quick test_runner_bell_stats;
          Alcotest.test_case "seed reproducible" `Quick
            test_runner_seed_reproducible;
          Alcotest.test_case "collect" `Quick test_collect;
        ] );
      ( "density",
        [
          Alcotest.test_case "matches exact" `Quick test_density_matches_exact;
          Alcotest.test_case "trace preserved" `Quick
            test_density_trace_preserved;
          Alcotest.test_case "purity" `Quick test_density_purity;
          Alcotest.test_case "meas flip exact" `Quick
            test_density_meas_flip_exact;
          Alcotest.test_case "reset flip exact" `Quick
            test_density_reset_flip_exact;
          Alcotest.test_case "matches trajectories" `Slow
            test_density_matches_trajectories;
          Alcotest.test_case "qubit cap" `Quick test_density_qubit_cap;
          Alcotest.test_case "feedforward scope" `Quick
            test_density_feedforward_scope;
          Alcotest.test_case "amp damp decay" `Slow test_amp_damp_decay;
          Alcotest.test_case "amp damp non-unital" `Quick
            test_amp_damp_nonunital;
        ] );
      ( "observable",
        [
          Alcotest.test_case "bell" `Quick test_observable_bell;
          Alcotest.test_case "combinators" `Quick test_observable_combinators;
          Alcotest.test_case "phase kickback invariant" `Quick
            test_observable_phase_kickback_invariant;
          Alcotest.test_case "errors" `Quick test_observable_errors;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "frequencies" `Quick test_sampler_frequencies;
          Alcotest.test_case "point mass" `Quick test_sampler_deterministic_dist;
          Alcotest.test_case "matches circuit shots" `Slow
            test_sampler_matches_circuit_shots;
        ] );
      ( "mitigation",
        [
          Alcotest.test_case "confusion columns" `Quick test_confusion_columns;
          Alcotest.test_case "calibrate matches analytic" `Slow
            test_calibrate_matches_analytic;
          Alcotest.test_case "recovers noisy BV" `Slow test_mitigation_recovers;
          Alcotest.test_case "errors" `Quick test_mitigation_errors;
        ] );
      ( "stabilizer",
        [
          Alcotest.test_case "bell" `Quick test_stab_bell;
          Alcotest.test_case "deterministic" `Quick test_stab_deterministic;
          Alcotest.test_case "conditioned+reset" `Quick
            test_stab_conditioned_and_reset;
          Alcotest.test_case "BV at scale" `Quick test_stab_bv_at_scale;
          Alcotest.test_case "unsupported" `Quick test_stab_unsupported;
          Alcotest.test_case "cz and s" `Quick test_stabilizer_cz_and_s;
          QCheck_alcotest.to_alcotest prop_stabilizer_matches_exact;
        ] );
      ( "noise",
        [
          Alcotest.test_case "ideal matches exact" `Quick
            test_noise_ideal_matches_exact;
          Alcotest.test_case "validate" `Quick test_noise_validate;
          Alcotest.test_case "meas flip" `Quick test_noise_meas_flip;
          Alcotest.test_case "reset flip" `Quick test_noise_reset_flip;
          Alcotest.test_case "feedforward dephasing" `Quick
            test_feedforward_dephasing_selective;
          Alcotest.test_case "expected outcome" `Quick
            test_noise_expected_outcome_probability;
        ] );
    ]
