open Circuit

(* Compiled execution plans ([Sim.Program]): randomized differential
   tests against the generic interpreter ([Statevector.run_reference]),
   fusion unit tests, and the default-seed contract. *)

let check_int = Alcotest.(check int)

let hist_pairs = Alcotest.(list (pair int int))

let check_hist msg a b =
  Alcotest.check hist_pairs msg (Sim.Runner.to_list a) (Sim.Runner.to_list b)

(* ------------------------------------------------------------------ *)
(* Random circuit generator: plain/controlled unitaries, mid-circuit
   measurement, active reset, classically conditioned gates, barriers *)

let random_gate rng =
  match Random.State.int rng 14 with
  | 0 -> Gate.H
  | 1 -> Gate.X
  | 2 -> Gate.Y
  | 3 -> Gate.Z
  | 4 -> Gate.S
  | 5 -> Gate.Sdg
  | 6 -> Gate.T
  | 7 -> Gate.Tdg
  | 8 -> Gate.V
  | 9 -> Gate.Vdg
  | 10 -> Gate.Rx (Random.State.float rng 6.28)
  | 11 -> Gate.Ry (Random.State.float rng 6.28)
  | 12 -> Gate.Rz (Random.State.float rng 6.28)
  | _ -> Gate.Phase (Random.State.float rng 6.28)

(* [k] distinct qubits of [n], target first *)
let distinct_qubits rng n k =
  let chosen = ref [] in
  while List.length !chosen < k do
    let q = Random.State.int rng n in
    if not (List.mem q !chosen) then chosen := q :: !chosen
  done;
  !chosen

let random_instr rng ~n ~num_bits : Instruction.t =
  match Random.State.int rng 12 with
  | 0 | 1 | 2 | 3 ->
      Instruction.Unitary
        (Instruction.app (random_gate rng) (Random.State.int rng n))
  | 4 | 5 ->
      if n < 2 then
        Instruction.Unitary
          (Instruction.app (random_gate rng) (Random.State.int rng n))
      else
        let k = min n (2 + Random.State.int rng 2) in
        (match distinct_qubits rng n k with
        | target :: controls ->
            Instruction.Unitary
              (Instruction.app ~controls (random_gate rng) target)
        | [] -> assert false)
  | 6 | 7 ->
      Instruction.Measure
        { qubit = Random.State.int rng n; bit = Random.State.int rng num_bits }
  | 8 -> Instruction.Reset (Random.State.int rng n)
  | 9 | 10 ->
      let cond =
        Instruction.cond_bit
          (Random.State.int rng num_bits)
          (Random.State.bool rng)
      in
      let controls =
        if n >= 2 && Random.State.bool rng then
          match distinct_qubits rng n 2 with
          | [ _; c ] -> [ c ]
          | _ -> []
        else []
      in
      let target =
        let rec pick () =
          let t = Random.State.int rng n in
          if List.mem t controls then pick () else t
        in
        pick ()
      in
      Instruction.Conditioned (cond, Instruction.app ~controls (random_gate rng) target)
  | _ -> Instruction.Barrier (distinct_qubits rng n (1 + Random.State.int rng n))

let random_circuit rng =
  let n = 1 + Random.State.int rng 10 in
  let num_bits = 1 + Random.State.int rng 4 in
  let depth = 5 + Random.State.int rng 40 in
  let instrs = List.init depth (fun _ -> random_instr rng ~n ~num_bits) in
  Circ.create ~roles:(Array.make n Circ.Data) ~num_bits instrs

(* ------------------------------------------------------------------ *)
(* Differential: compiled ≡ generic interpreter, amplitude for
   amplitude.  Both paths consume the RNG in source order, so for the
   same seed the measurement record — and hence the full final state —
   must agree, not merely the distribution. *)

let eps = 1e-9

let check_states ~msg a b =
  check_int (msg ^ ": register") (Sim.Statevector.register b)
    (Sim.Statevector.register a);
  let va = Sim.Statevector.amplitudes a
  and vb = Sim.Statevector.amplitudes b in
  check_int (msg ^ ": dim") (Linalg.Cvec.dim vb) (Linalg.Cvec.dim va);
  for i = 0 to Linalg.Cvec.dim va - 1 do
    let x = Linalg.Cvec.get va i and y = Linalg.Cvec.get vb i in
    if
      Float.abs (x.Complex.re -. y.Complex.re) > eps
      || Float.abs (x.Complex.im -. y.Complex.im) > eps
    then
      Alcotest.failf "%s: amplitude %d differs: (%g,%g) vs (%g,%g)" msg i
        x.Complex.re x.Complex.im y.Complex.re y.Complex.im
  done

let test_differential_random () =
  let gen = Random.State.make [| 0x5EED; 42 |] in
  for case = 0 to 219 do
    let c = random_circuit gen in
    let seed = Random.State.int gen 1_000_000 in
    let run_with f = f ~rng:(Random.State.make [| seed |]) c in
    let compiled = run_with Sim.Statevector.run in
    let reference = run_with Sim.Statevector.run_reference in
    check_states ~msg:(Printf.sprintf "case %d (seed %d)" case seed) compiled
      reference
  done

let test_differential_unfused () =
  (* fusion off: the 1:1 lowering must match the interpreter too *)
  let gen = Random.State.make [| 0xD1FF |] in
  for case = 0 to 49 do
    let c = random_circuit gen in
    let seed = Random.State.int gen 1_000_000 in
    let program = Sim.Program.compile ~fuse:false c in
    let compiled =
      Sim.Program.run ~rng:(Random.State.make [| seed |]) program
    in
    let reference =
      Sim.Statevector.run_reference ~rng:(Random.State.make [| seed |]) c
    in
    check_states ~msg:(Printf.sprintf "unfused case %d" case) compiled reference
  done

(* ------------------------------------------------------------------ *)
(* Fusion units                                                       *)

let circuit_of instrs ~n ~num_bits =
  Circ.create ~roles:(Array.make n Circ.Data) ~num_bits instrs

let u g = Instruction.Unitary (Instruction.app g 0)

let test_fuse_hh_identity () =
  let c = circuit_of ~n:1 ~num_bits:0 [ u Gate.H; u Gate.H ] in
  let p = Sim.Program.compile c in
  check_int "HH fuses to nothing" 0 (Sim.Program.length p);
  check_int "both applications eliminated" 2 (Sim.Program.fused_count p);
  let st = Sim.Program.run ~rng:(Random.State.make [| 1 |]) p in
  Alcotest.(check (float 1e-12))
    "state is |0>" 1.
    (Sim.Statevector.probabilities st).(0)

let test_fuse_adjacent_phases () =
  let c = circuit_of ~n:1 ~num_bits:0 [ u Gate.T; u Gate.S; u Gate.T ] in
  let p = Sim.Program.compile c in
  check_int "T;S;T merges into one op" 1 (Sim.Program.length p);
  check_int "two applications eliminated" 2 (Sim.Program.fused_count p)

let test_fuse_cx_pair () =
  let cx = Instruction.Unitary (Instruction.app ~controls:[ 0 ] Gate.X 1) in
  let c = circuit_of ~n:2 ~num_bits:0 [ cx; cx ] in
  let p = Sim.Program.compile c in
  check_int "CX;CX cancels" 0 (Sim.Program.length p)

let test_no_fuse_across_targets () =
  let c =
    circuit_of ~n:2 ~num_bits:0
      [
        u Gate.T;
        Instruction.Unitary (Instruction.app Gate.T 1);
        u Gate.T;
      ]
  in
  let p = Sim.Program.compile c in
  (* T(q0); T(q1); T(q0): the q1 gate interleaves, but fusion only
     groups *adjacent* gates on one target, so nothing merges *)
  check_int "different targets do not merge" 3 (Sim.Program.length p)

let test_fusion_barriers () =
  let barriers =
    [
      ("measure", Instruction.Measure { qubit = 0; bit = 0 });
      ("reset", Instruction.Reset 0);
      ( "conditioned",
        Instruction.Conditioned
          (Instruction.cond_bit 0 true, Instruction.app Gate.Z 0) );
    ]
  in
  List.iter
    (fun (name, barrier_instr) ->
      let c = circuit_of ~n:1 ~num_bits:1 [ u Gate.T; barrier_instr; u Gate.T ] in
      let p = Sim.Program.compile c in
      check_int (name ^ " is a fusion barrier") 3 (Sim.Program.length p);
      check_int (name ^ ": nothing eliminated") 0 (Sim.Program.fused_count p))
    barriers

let test_plain_barrier_flushes_but_vanishes () =
  let c =
    circuit_of ~n:1 ~num_bits:0 [ u Gate.T; Instruction.Barrier [ 0 ]; u Gate.T ]
  in
  let p = Sim.Program.compile c in
  (* the barrier itself emits no op but still cuts the fusion window *)
  check_int "barrier cuts fusion, emits nothing" 2 (Sim.Program.length p)

let test_split_prefix () =
  let c =
    circuit_of ~n:1 ~num_bits:1
      [ u Gate.H; Instruction.Measure { qubit = 0; bit = 0 }; u Gate.X ]
  in
  let prefix, suffix = Sim.Program.split_prefix (Sim.Program.compile c) in
  check_int "prefix = the H" 1 (Sim.Program.length prefix);
  check_int "suffix = measure + X" 2 (Sim.Program.length suffix)

(* ------------------------------------------------------------------ *)
(* Default-seed contract (shared constant across engines)             *)

let test_default_seed () =
  check_int "documented constant" 0xC0FFEE Sim.Runner.default_seed;
  let b = Circ.Builder.make ~roles:(Array.make 2 Circ.Data) ~num_bits:2 () in
  Circ.Builder.h b 0;
  Circ.Builder.cx b 0 1;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.measure b ~qubit:1 ~bit:1;
  let c = Circ.Builder.build b in
  let shots = 200 in
  check_hist "Runner default = explicit default_seed"
    (Sim.Runner.run_shots ~shots c)
    (Sim.Runner.run_shots ~seed:Sim.Runner.default_seed ~shots c);
  check_hist "Backend default = explicit default_seed"
    (Sim.Backend.run ~shots c)
    (Sim.Backend.run ~seed:Sim.Runner.default_seed ~shots c);
  check_hist "Parallel default = explicit default_seed"
    (Sim.Parallel.run ~width:2 ~shots (fun ~rng ~index:_ ->
         Random.State.int rng 4))
    (Sim.Parallel.run ~seed:Sim.Runner.default_seed ~width:2 ~shots
       (fun ~rng ~index:_ -> Random.State.int rng 4))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "program"
    [
      ( "differential",
        [
          Alcotest.test_case "220 random circuits" `Quick
            test_differential_random;
          Alcotest.test_case "unfused lowering" `Quick
            test_differential_unfused;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "HH = I dropped" `Quick test_fuse_hh_identity;
          Alcotest.test_case "adjacent phases merge" `Quick
            test_fuse_adjacent_phases;
          Alcotest.test_case "CX pair cancels" `Quick test_fuse_cx_pair;
          Alcotest.test_case "no merge across targets" `Quick
            test_no_fuse_across_targets;
          Alcotest.test_case "measure/reset/cond are barriers" `Quick
            test_fusion_barriers;
          Alcotest.test_case "plain barrier" `Quick
            test_plain_barrier_flushes_but_vanishes;
          Alcotest.test_case "split at first branch" `Quick test_split_prefix;
        ] );
      ( "seed",
        [ Alcotest.test_case "default-seed contract" `Quick test_default_seed ] );
    ]
