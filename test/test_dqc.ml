open Circuit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let u ?controls g t = Instruction.Unitary (Instruction.app ?controls g t)
let app ?controls g t = Instruction.app ?controls g t

(* ------------------------------------------------------------------ *)
(* Commute                                                            *)

let test_commute_disjoint () =
  check_bool "disjoint" true
    (Dqc.Commute.unitary_apps (app Gate.H 0) (app Gate.X 1))

let test_commute_shared_control () =
  check_bool "control-control" true
    (Dqc.Commute.unitary_apps
       (app ~controls:[ 0 ] Gate.X 1)
       (app ~controls:[ 0 ] Gate.V 2))

let test_commute_negative () =
  check_bool "H vs its control" false
    (Dqc.Commute.unitary_apps (app Gate.H 0) (app ~controls:[ 0 ] Gate.X 1));
  check_bool "X vs Z same qubit" false
    (Dqc.Commute.unitary_apps (app Gate.X 0) (app Gate.Z 0))

let test_commute_same_target_compatible () =
  (* CX and CV sharing a target commute because X and V commute *)
  check_bool "cx/cv shared target" true
    (Dqc.Commute.unitary_apps
       (app ~controls:[ 0 ] Gate.X 2)
       (app ~controls:[ 1 ] Gate.V 2));
  check_bool "cx/cz shared target" false
    (Dqc.Commute.unitary_apps
       (app ~controls:[ 0 ] Gate.X 2)
       (app ~controls:[ 1 ] Gate.Z 2))

let test_commute_diagonal_fast_path () =
  check_bool "t vs rz same qubit" true
    (Dqc.Commute.unitary_apps (app Gate.T 0) (app (Gate.Rz 0.3) 0))

let test_commute_conditioned_pairs () =
  let cnd b = Instruction.cond_bit b true in
  let cd b g q = Instruction.Conditioned (cnd b, app g q) in
  (* same bit, commuting diagonal apps: reorderable *)
  check_bool "same bit diagonal apps" true
    (Dqc.Commute.instrs (cd 0 Gate.T 0) (cd 0 (Gate.Rz 0.4) 0));
  (* same qubit, non-commuting apps: not reorderable *)
  check_bool "non-commuting apps" false
    (Dqc.Commute.instrs (cd 0 Gate.X 0) (cd 1 Gate.Z 0));
  (* conditioned vs plain unitary on disjoint qubits *)
  check_bool "conditioned vs unitary disjoint" true
    (Dqc.Commute.instrs (cd 0 Gate.X 0) (u Gate.H 1))

let test_commute_instrs_measure () =
  let m = Instruction.Measure { qubit = 0; bit = 0 } in
  check_bool "measure vs disjoint gate" true (Dqc.Commute.instrs m (u Gate.X 1));
  check_bool "measure vs same-qubit gate" false
    (Dqc.Commute.instrs m (u Gate.X 0));
  let cnd = Instruction.Conditioned (Instruction.cond_bit 0 true, app Gate.X 1) in
  check_bool "measure vs conditioned on its bit" false
    (Dqc.Commute.instrs m cnd);
  check_bool "reset vs disjoint" true
    (Dqc.Commute.instrs (Instruction.Reset 0) (u Gate.X 1))

(* ------------------------------------------------------------------ *)
(* Interaction                                                        *)

let circ ~roles instrs = Circ.create ~roles ~num_bits:0 instrs
let dda = [| Circ.Data; Circ.Data; Circ.Answer |]

let test_edges () =
  let c = circ ~roles:dda [ u ~controls:[ 0 ] Gate.X 1; u ~controls:[ 0 ] Gate.X 2 ] in
  Alcotest.(check (list (pair int int))) "one data-data edge" [ (0, 1) ]
    (Dqc.Interaction.edges c)

let test_order_chain () =
  let roles = [| Circ.Data; Circ.Data; Circ.Data; Circ.Answer |] in
  let c =
    circ ~roles [ u ~controls:[ 2 ] Gate.X 1; u ~controls:[ 1 ] Gate.X 0 ]
  in
  Alcotest.(check (list int)) "topological" [ 2; 1; 0 ]
    (Dqc.Interaction.iteration_order c)

let test_order_cycle () =
  let c =
    circ ~roles:dda [ u ~controls:[ 0 ] Gate.X 1; u ~controls:[ 1 ] Gate.X 0 ]
  in
  check_bool "cyclic raises" true
    (try
       ignore (Dqc.Interaction.iteration_order c);
       false
     with Dqc.Interaction.Cyclic _ -> true)

let test_order_ancilla_last () =
  let roles = [| Circ.Data; Circ.Data; Circ.Answer; Circ.Ancilla |] in
  let c =
    circ ~roles [ u ~controls:[ 0 ] Gate.X 3; u ~controls:[ 1 ] Gate.X 3 ]
  in
  Alcotest.(check (list int)) "ancilla after controls" [ 0; 1; 3 ]
    (Dqc.Interaction.iteration_order c)

(* ------------------------------------------------------------------ *)
(* Transform                                                          *)

let bv s = Algorithms.Bv.circuit s

let test_transform_bv_structure () =
  let r = Dqc.Transform.transform (bv "101") in
  check_int "qubits" 2 (Circ.num_qubits r.circuit);
  check_int "bits" 3 (Circ.num_bits r.circuit);
  let s = Metrics.stats r.circuit in
  check_int "one measure per data qubit" 3 s.Metrics.measure;
  check_int "reset between iterations" 2 s.Metrics.reset;
  check_int "no conditioned gates in BV" 0 (Dqc.Transform.conditioned_count r);
  Alcotest.(check (list int)) "iteration order" [ 0; 1; 2 ] r.iteration_order;
  Alcotest.(check (list (pair int int))) "data bits" [ (0, 0); (1, 1); (2, 2) ]
    r.data_bit;
  Alcotest.(check (list (pair int int))) "answer phys" [ (3, 1) ] r.answer_phys;
  check_int "no violations" 0 (List.length r.violations)

let test_transform_bv_equivalence_all () =
  List.iter
    (fun s ->
      let c = bv s in
      let r = Dqc.Transform.transform c in
      check_bool ("BV_" ^ s) true (Dqc.Equivalence.equivalent c r))
    Algorithms.Bv.paper_benchmarks

let test_transform_sound_bv () =
  let c = bv "1101" in
  let r = Dqc.Transform.transform ~mode:`Sound c in
  check_bool "sound mode succeeds on BV" true (Dqc.Equivalence.equivalent c r)

let test_transform_hidden_string_recovered () =
  let s = "1011" in
  let r = Dqc.Transform.transform (bv s) in
  let d = Sim.Exact.register_distribution r.circuit in
  let expected = Algorithms.Bv.expected_outcome s in
  Alcotest.(check (float 1e-9)) "BV deterministic" 1. (Sim.Dist.prob d expected)

let test_transform_rejects_multi_control () =
  let roles = [| Circ.Data; Circ.Data; Circ.Answer |] in
  let c = circ ~roles [ u ~controls:[ 0; 1 ] Gate.X 2 ] in
  check_bool "toffoli rejected" true
    (try
       ignore (Dqc.Transform.transform c);
       false
     with Dqc.Transform.Not_transformable _ -> true)

let test_transform_rejects_measured_input () =
  let c =
    Circ.create ~roles:[| Circ.Data; Circ.Answer |] ~num_bits:1
      [ Instruction.Measure { qubit = 0; bit = 0 } ]
  in
  check_bool "measurement rejected" true
    (try
       ignore (Dqc.Transform.transform c);
       false
     with Dqc.Transform.Not_transformable _ -> true)

let test_transform_no_data_qubits () =
  let c = Circ.create ~roles:[| Circ.Answer |] ~num_bits:0 [ u Gate.H 0 ] in
  check_bool "no data qubits" true
    (try
       ignore (Dqc.Transform.transform c);
       false
     with Dqc.Transform.Not_transformable _ -> true)

let test_transform_dyn1_has_violations () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
  let dj = Algorithms.Dj.circuit o in
  let r = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_1 dj in
  check_bool "violations recorded" true (List.length r.violations > 0);
  let v = List.hd r.violations in
  check_bool "jumped over non-commuting gates" true
    (List.length v.Dqc.Transform.jumped_over > 0)

let test_transform_sound_rejects_dyn1 () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
  let dj = Algorithms.Dj.circuit o in
  check_bool "sound mode refuses unsound schedule" true
    (try
       ignore (Dqc.Toffoli_scheme.transform ~mode:`Sound Dqc.Toffoli_scheme.Dynamic_1 dj);
       false
     with Dqc.Transform.Not_transformable _ -> true)

let test_transform_answer_answer_gate () =
  (* gates between two answer qubits stay quantum *)
  let roles = [| Circ.Data; Circ.Answer; Circ.Answer |] in
  let c =
    circ ~roles
      [ u Gate.H 0; u ~controls:[ 0 ] Gate.X 1; u ~controls:[ 1 ] Gate.X 2 ]
  in
  let r = Dqc.Transform.transform c in
  check_bool "equivalent" true (Dqc.Equivalence.equivalent c r);
  check_int "three qubits out" 3 (Circ.num_qubits r.circuit)

let test_transform_conditioned_gate_value () =
  (* a data-data CX becomes a conditioned X on the later iteration *)
  let roles = [| Circ.Data; Circ.Data; Circ.Answer |] in
  let c =
    circ ~roles
      [ u Gate.X 0; u ~controls:[ 0 ] Gate.X 1; u ~controls:[ 1 ] Gate.X 2 ]
  in
  let r = Dqc.Transform.transform c in
  check_int "one conditioned gate" 1 (Dqc.Transform.conditioned_count r);
  check_bool "equivalent" true (Dqc.Equivalence.equivalent c r);
  (* X(q0) flips q0 to 1, so the CX fires, q1 = 1, answer = 1 *)
  let d = Dqc.Equivalence.dynamic_distribution r in
  Alcotest.(check (float 1e-9)) "registers 111" 1. (Sim.Dist.prob d 0b111)

(* ------------------------------------------------------------------ *)
(* Direct MCT (future work)                                           *)

let test_direct_mct_structure () =
  let dj = Algorithms.Dj.circuit (Algorithms.Mct_bench.and_n 3) in
  let r = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Direct_mct dj in
  check_int "two qubits" 2 (Circ.num_qubits r.circuit);
  check_int "three iterations" 3 (List.length r.iteration_order);
  check_int "single conditioned gate" 1 (Dqc.Transform.conditioned_count r);
  (* the C^3X lands in the last control's iteration: two measured
     controls become a 2-bit conjunction, the live one stays quantum *)
  let conj_width, quantum_controls =
    List.fold_left
      (fun (w, qc) (i : Instruction.t) ->
        match i with
        | Conditioned (c, a) ->
            (max w (List.length c.Instruction.bits),
             max qc (List.length a.Instruction.controls))
        | Unitary _ | Measure _ | Reset _ | Barrier _ -> (w, qc))
      (0, 0)
      (Circ.instructions r.circuit)
  in
  check_int "conjunction over 2 bits" 2 conj_width;
  check_int "one live quantum control" 1 quantum_controls

let test_direct_mct_requires_flag () =
  let dj = Algorithms.Dj.circuit (Algorithms.Mct_bench.and_n 3) in
  check_bool "rejected without ~mct" true
    (try
       ignore (Dqc.Transform.transform dj);
       false
     with Dqc.Transform.Not_transformable _ -> true);
  (* and accepted with the flag *)
  let r = Dqc.Transform.transform ~mct:true dj in
  check_int "accepted with ~mct" 2 (Circ.num_qubits r.circuit)

let test_mct_reduction_routes_transform () =
  (* V-chain reduction shaped for the DQC lets both paper schemes
     handle C^4X oracles *)
  let dj = Algorithms.Dj.circuit (Algorithms.Mct_bench.and_n 4) in
  List.iter
    (fun scheme ->
      let r = Dqc.Toffoli_scheme.transform scheme dj in
      check_int
        (Dqc.Toffoli_scheme.to_string scheme ^ " two qubits")
        2
        (Circ.num_qubits r.circuit))
    [ Dqc.Toffoli_scheme.Dynamic_1; Dqc.Toffoli_scheme.Dynamic_2 ]

let test_direct_mct_basis_state_exact () =
  (* without the DJ Hadamards the data qubits stay in basis states, the
     unsound-reorder hazard disappears, and the direct MCT realization
     is exactly equivalent *)
  let roles = Array.append (Array.make 3 Circ.Data) [| Circ.Answer |] in
  let c =
    Circ.create ~roles ~num_bits:0
      [
        u Gate.X 0;
        u Gate.X 1;
        u Gate.X 2;
        u ~controls:[ 0; 1; 2 ] Gate.X 3;
      ]
  in
  let r = Dqc.Transform.transform ~mct:true c in
  check_bool "exact on basis inputs" true (Dqc.Equivalence.equivalent c r);
  let d = Dqc.Equivalence.dynamic_distribution ~relative_to:c r in
  Alcotest.(check (float 1e-9)) "fires: register 1111" 1.
    (Sim.Dist.prob d 0b1111)

(* ------------------------------------------------------------------ *)
(* Equivalence                                                        *)

let test_equivalence_detects_difference () =
  let roles = [| Circ.Data; Circ.Answer |] in
  let c = circ ~roles [ u Gate.X 0; u ~controls:[ 0 ] Gate.X 1 ] in
  let r = Dqc.Transform.transform c in
  check_bool "equal" true (Dqc.Equivalence.equivalent c r);
  (* tamper with the dynamic circuit: flip the answer *)
  let tampered =
    { r with Dqc.Transform.circuit = Circ.append r.circuit [ u Gate.X 1 ] }
  in
  check_bool "tamper detected" false (Dqc.Equivalence.equivalent c tampered);
  Alcotest.(check (float 1e-9)) "tv = 1" 1. (Dqc.Equivalence.tv_distance c tampered)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                           *)

let test_pipeline_default () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "OR") in
  let out = Dqc.Pipeline.compile (Algorithms.Dj.circuit o) in
  check_int "qubits" 2 out.Dqc.Pipeline.qubits;
  (* the symbolic certifier now supersedes the numeric check; either
     evidence level proves dyn2 exact here *)
  (match (out.Dqc.Pipeline.certified, out.Dqc.Pipeline.tv) with
  | true, None -> ()
  | _, Some tv -> check_bool "dyn2 exact" true (tv < 1e-9)
  | false, None -> Alcotest.fail "expected certified or tv");
  check_bool "gates counted" true (out.Dqc.Pipeline.gates > 20);
  check_bool "renders" true
    (String.length (Dqc.Pipeline.to_string out) > 40)

let test_pipeline_sound_multislot_native () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
  let options =
    Dqc.Pipeline.Options.(
      default
      |> with_scheme Dqc.Toffoli_scheme.Dynamic_1
      |> with_mode `Sound |> with_slots 2 |> with_native true
      |> with_peephole true)
  in
  let out = Dqc.Pipeline.compile ~options (Algorithms.Dj.circuit o) in
  check_int "three qubits" 3 out.Dqc.Pipeline.qubits;
  check_int "no violations" 0 out.Dqc.Pipeline.violations;
  (match out.Dqc.Pipeline.tv with
  | Some tv -> check_bool "exact" true (tv < 1e-9)
  | None -> Alcotest.fail "expected a tv check");
  check_bool "native basis" true
    (Transpile.Basis.is_native out.Dqc.Pipeline.circuit)

let test_pipeline_direct_mct () =
  let dj = Algorithms.Dj.circuit (Algorithms.Mct_bench.and_n 3) in
  let options =
    Dqc.Pipeline.Options.(
      default |> with_scheme Dqc.Toffoli_scheme.Direct_mct)
  in
  let out = Dqc.Pipeline.compile ~options dj in
  check_int "two qubits" 2 out.Dqc.Pipeline.qubits

(* ------------------------------------------------------------------ *)
(* Multi_transform                                                    *)

let test_multi_slots1_matches_transform () =
  List.iter
    (fun s ->
      let c = bv s in
      let r = Dqc.Transform.transform c in
      let m = Dqc.Multi_transform.transform ~slots:1 c in
      check_bool ("BV_" ^ s) true (Circ.equal r.circuit m.circuit))
    [ "1"; "101"; "1101" ]

let test_multi_slots_bv_exact_everywhere () =
  let c = bv "1011" in
  List.iter
    (fun k ->
      let m = Dqc.Multi_transform.transform ~mode:`Sound ~slots:k c in
      check_int "qubits" (k + 1) (Circ.num_qubits m.circuit);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "tv at k=%d" k)
        0.
        (Dqc.Multi_transform.tv_distance c m))
    [ 1; 2; 3; 4 ]

let test_multi_one_extra_slot_fixes_dyn1 () =
  (* the E11 headline: dynamic-1 is sound-certified with 2 slots *)
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
  let prepared =
    Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_1
      (Algorithms.Dj.circuit o)
  in
  check_bool "min slots = 2" true
    (Dqc.Multi_transform.min_exact_slots prepared = Some 2);
  let m = Dqc.Multi_transform.transform ~mode:`Sound ~slots:2 prepared in
  check_int "no violations" 0 (List.length m.violations);
  Alcotest.(check (float 1e-9)) "exact" 0.
    (Dqc.Multi_transform.tv_distance prepared m);
  (* the data-data CX stayed quantum: no conditioned gates at all *)
  let conditioned =
    List.length
      (List.filter
         (fun (i : Instruction.t) ->
           match i with
           | Conditioned _ -> true
           | Unitary _ | Measure _ | Reset _ | Barrier _ -> false)
         (Circ.instructions m.circuit))
  in
  check_int "all-quantum schedule" 0 conditioned

let test_multi_full_width_is_traditional_shape () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
  let prepared =
    Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_1
      (Algorithms.Dj.circuit o)
  in
  let m = Dqc.Multi_transform.transform ~mode:`Sound ~slots:99 prepared in
  (* slots clamp to the work-qubit count; no resets remain *)
  check_int "slots clamped" 2 m.slots;
  Alcotest.(check (float 1e-9)) "exact" 0.
    (Dqc.Multi_transform.tv_distance prepared m)

let test_multi_cyclic_needs_width () =
  let a, _ = Algorithms.Arithmetic.adder 2 in
  let prepared = Decompose.Pass.substitute_toffoli `Barenco a in
  (* slots = 1 propagates the cyclic failure *)
  check_bool "k=1 cyclic" true
    (try
       ignore (Dqc.Multi_transform.transform ~slots:1 prepared);
       false
     with Dqc.Interaction.Cyclic _ -> true);
  (* full width schedules it exactly *)
  match Dqc.Multi_transform.min_exact_slots prepared with
  | Some k ->
      check_bool "needs most of the register" true (k >= 4);
      let m = Dqc.Multi_transform.transform ~mode:`Sound ~slots:k prepared in
      Alcotest.(check (float 1e-9)) "exact" 0.
        (Dqc.Multi_transform.tv_distance prepared m)
  | None -> Alcotest.fail "expected a certified width"

let test_multi_direct_mct_width () =
  (* the sound schedule of a C^nX needs every control co-live *)
  let dj = Algorithms.Dj.circuit (Algorithms.Mct_bench.and_n 3) in
  check_bool "all controls live" true
    (Dqc.Multi_transform.min_exact_slots ~mct:true dj = Some 3);
  let m = Dqc.Multi_transform.transform ~mode:`Sound ~mct:true ~slots:3 dj in
  Alcotest.(check (float 1e-9)) "exact" 0.
    (Dqc.Multi_transform.tv_distance dj m)

let test_multi_invalid_slots () =
  check_bool "slots 0" true
    (try
       ignore (Dqc.Multi_transform.transform ~slots:0 (bv "11"));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Order override / Order_search                                      *)

let test_order_override () =
  let c = bv "101" in
  let r = Dqc.Transform.transform ~order:[ 2; 0; 1 ] c in
  Alcotest.(check (list int)) "order honoured" [ 2; 0; 1 ] r.iteration_order;
  check_bool "still exact" true (Dqc.Equivalence.equivalent c r);
  (* non-permutation and edge-violating orders are rejected *)
  check_bool "bad order rejected" true
    (try
       ignore (Dqc.Transform.transform ~order:[ 0; 1 ] c);
       false
     with Dqc.Transform.Not_transformable _ -> true);
  let roles = [| Circ.Data; Circ.Data; Circ.Answer |] in
  let chained =
    circ ~roles [ u ~controls:[ 0 ] Gate.X 1; u ~controls:[ 1 ] Gate.X 2 ]
  in
  check_bool "edge-violating order rejected" true
    (try
       ignore (Dqc.Transform.transform ~order:[ 1; 0 ] chained);
       false
     with Dqc.Transform.Not_transformable _ -> true)

let test_order_search_bv () =
  let cands = Dqc.Order_search.search (bv "101") in
  check_int "3! orders" 6 (List.length cands);
  List.iter
    (fun (cand : Dqc.Order_search.candidate) ->
      check_bool "all exact" true (cand.tv < 1e-9))
    cands

let test_order_search_constrained () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
  let p1 =
    Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_1
      (Algorithms.Dj.circuit o)
  in
  (* the CX sandwich forces q0 before q1: exactly one legal order *)
  check_int "single legal order" 1 (List.length (Dqc.Order_search.search p1))

let test_order_invariance_of_deviation () =
  (* the Fig 7 deviation cannot be scheduled away: every legal order
     of CARRY/dynamic-2 has the same TV distance *)
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY") in
  let p2 =
    Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_2
      (Algorithms.Dj.circuit o)
  in
  let cands = Dqc.Order_search.search p2 in
  check_bool "several orders" true (List.length cands > 1);
  let tvs = List.map (fun (c : Dqc.Order_search.candidate) -> c.tv) cands in
  List.iter
    (fun tv ->
      check_bool "order-invariant" true (abs_float (tv -. List.hd tvs) < 1e-9))
    tvs

(* ------------------------------------------------------------------ *)
(* Analysis                                                           *)

let test_analysis_verdicts () =
  let is = function
    | Dqc.Analysis.Exact_certified -> "certified"
    | Dqc.Analysis.Exact_observed -> "observed"
    | Dqc.Analysis.Approximate _ -> "approximate"
    | Dqc.Analysis.Untransformable _ -> "untransformable"
  in
  let verdict c = is (Dqc.Analysis.analyze c).Dqc.Analysis.verdict in
  Alcotest.(check string) "BV certified" "certified"
    (verdict (Algorithms.Bv.circuit "101"));
  let dj = Algorithms.Dj.circuit (Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND")) in
  Alcotest.(check string) "dyn1 approximate" "approximate"
    (verdict (Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_1 dj));
  Alcotest.(check string) "dyn2 observed" "observed"
    (verdict (Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_2 dj));
  let adder, _ = Algorithms.Arithmetic.adder 2 in
  Alcotest.(check string) "adder untransformable" "untransformable"
    (verdict (Decompose.Pass.substitute_toffoli `Barenco adder))

let test_analysis_report_fields () =
  let r = Dqc.Analysis.analyze (Algorithms.Bv.circuit "1101") in
  check_int "data" 4 r.Dqc.Analysis.data_qubits;
  check_int "answers" 1 r.Dqc.Analysis.answer_qubits;
  check_bool "acyclic" false r.Dqc.Analysis.cyclic;
  check_bool "savings" true (r.Dqc.Analysis.qubit_savings = Some 3);
  check_bool "renders" true
    (String.length (Dqc.Analysis.to_string r) > 40);
  check_bool "min slots" true (r.Dqc.Analysis.min_exact_slots = Some 1)

let test_analysis_min_slots_dyn1 () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
  let prepared =
    Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_1
      (Algorithms.Dj.circuit o)
  in
  let r = Dqc.Analysis.analyze prepared in
  check_bool "dyn1 exact from 2" true (r.Dqc.Analysis.min_exact_slots = Some 2)

let test_interaction_to_dot () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
  let prepared =
    Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_1
      (Algorithms.Dj.circuit o)
  in
  let dot = Dqc.Interaction.to_dot prepared in
  let contains sub =
    let n = String.length dot and m = String.length sub in
    let rec go i = i + m <= n && (String.sub dot i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "digraph" true (contains "digraph interaction");
  check_bool "edge" true (contains "q0 -> q1;")

(* ------------------------------------------------------------------ *)
(* Toffoli_scheme                                                     *)

let test_scheme_to_string () =
  Alcotest.(check string) "dyn1" "dynamic-1"
    (Dqc.Toffoli_scheme.to_string Dqc.Toffoli_scheme.Dynamic_1);
  Alcotest.(check string) "dyn2" "dynamic-2"
    (Dqc.Toffoli_scheme.to_string Dqc.Toffoli_scheme.Dynamic_2);
  Alcotest.(check string) "global" "dynamic-2(global)"
    (Dqc.Toffoli_scheme.to_string (Dqc.Toffoli_scheme.Dynamic_2_shared `Global))

let test_scheme_prepare () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
  let dj = Algorithms.Dj.circuit o in
  let p1 = Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_1 dj in
  check_int "dyn1 keeps qubit count" 3 (Circ.num_qubits p1);
  let p2 = Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_2 dj in
  check_int "dyn2 adds ancilla" 4 (Circ.num_qubits p2);
  let pt = Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Traditional dj in
  check_bool "traditional unchanged" true (Circ.equal dj pt)

let test_scheme_traditional_transform_raises () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
  let dj = Algorithms.Dj.circuit o in
  Alcotest.check_raises "traditional"
    (Invalid_argument "Toffoli_scheme.transform: Traditional") (fun () ->
      ignore (Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Traditional dj))

let test_dyn2_exact_for_two_input_oracles () =
  List.iter
    (fun (o : Algorithms.Oracle.t) ->
      if o.arity = 2 then begin
        let dj = Algorithms.Dj.circuit o in
        let r = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2 dj in
        check_bool (o.name ^ " dyn2 exact") true (Dqc.Equivalence.equivalent dj r)
      end)
    Algorithms.Dj_toffoli.oracles

let test_dyn1_inexact () =
  List.iter
    (fun (o : Algorithms.Oracle.t) ->
      let dj = Algorithms.Dj.circuit o in
      let r = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_1 dj in
      check_bool (o.name ^ " dyn1 deviates") true
        (Dqc.Equivalence.tv_distance dj r > 0.1))
    Algorithms.Dj_toffoli.oracles

(* qcheck: random BV/DJ-shaped circuits (1-qubit gates on data qubits,
   X/V-type oracle gates onto the answer — the commuting family real
   oracles use) transform exactly *)
let random_bv_like_gen =
  QCheck2.Gen.(
    list_size (int_range 1 15)
      (oneof
         [
           map2
             (fun g q -> u g q)
             (oneofl Gate.[ H; X; Z; T; S ])
             (int_range 0 2);
           map (fun c -> u ~controls:[ c ] Gate.X 3) (int_range 0 2);
           map (fun c -> u ~controls:[ c ] Gate.V 3) (int_range 0 2);
         ]))

let prop_oracle_shaped_exact =
  QCheck2.Test.make ~name:"random oracle-shaped circuits transform exactly"
    ~count:60 random_bv_like_gen
    (fun instrs ->
      let roles = [| Circ.Data; Circ.Data; Circ.Data; Circ.Answer |] in
      let c = Circ.create ~roles ~num_bits:0 instrs in
      let r = Dqc.Transform.transform c in
      Dqc.Equivalence.equivalent c r)

(* fully random circuits (including mid-stream answer-qubit gates) may
   be unsound under Algorithm 1 — but zero recorded violations must
   imply exact equivalence, and sound mode, when it succeeds, must be
   exact *)
let random_any_gen =
  QCheck2.Gen.(
    list_size (int_range 1 12)
      (oneof
         [
           map2
             (fun g q -> u g q)
             (oneofl Gate.[ H; X; Z; T; S ])
             (int_range 0 3);
           map2
             (fun g c -> u ~controls:[ c ] g 3)
             (oneofl Gate.[ X; V; Z; H ])
             (int_range 0 2);
         ]))

let prop_no_violations_implies_exact =
  QCheck2.Test.make
    ~name:"zero violations implies exact equivalence" ~count:60 random_any_gen
    (fun instrs ->
      let roles = [| Circ.Data; Circ.Data; Circ.Data; Circ.Answer |] in
      let c = Circ.create ~roles ~num_bits:0 instrs in
      let r = Dqc.Transform.transform c in
      r.violations <> [] || Dqc.Equivalence.equivalent c r)

let prop_sound_mode_exact =
  QCheck2.Test.make ~name:"sound mode success implies exact equivalence"
    ~count:60 random_any_gen
    (fun instrs ->
      let roles = [| Circ.Data; Circ.Data; Circ.Data; Circ.Answer |] in
      let c = Circ.create ~roles ~num_bits:0 instrs in
      match Dqc.Transform.transform ~mode:`Sound c with
      | r -> Dqc.Equivalence.equivalent c r
      | exception Dqc.Transform.Not_transformable _ -> true)

(* Transform outputs must satisfy the full DQC lint gate: at most one
   live data qubit, answer qubits never reset, no use-after-measure. *)
let test_transform_outputs_lint_clean () =
  let check name c =
    let r = Dqc.Transform.transform c in
    let rep = Lint.run ~passes:(Lint.dqc_passes ()) r.Dqc.Transform.circuit in
    Alcotest.(check int) (name ^ ": error diagnostics") 0 rep.Lint.errors
  in
  check "BV_101" (Algorithms.Bv.circuit "101");
  check "BV_110111" (Algorithms.Bv.circuit "110111");
  List.iter
    (fun (o : Algorithms.Oracle.t) ->
      check ("DJ_" ^ o.name) (Algorithms.Dj.circuit o))
    Algorithms.Dj.toffoli_free_oracles

let () =
  Alcotest.run "dqc"
    [
      ( "commute",
        [
          Alcotest.test_case "disjoint" `Quick test_commute_disjoint;
          Alcotest.test_case "shared control" `Quick test_commute_shared_control;
          Alcotest.test_case "negative" `Quick test_commute_negative;
          Alcotest.test_case "same target" `Quick
            test_commute_same_target_compatible;
          Alcotest.test_case "diagonal fast path" `Quick
            test_commute_diagonal_fast_path;
          Alcotest.test_case "measure conservative" `Quick
            test_commute_instrs_measure;
          Alcotest.test_case "conditioned pairs" `Quick
            test_commute_conditioned_pairs;
        ] );
      ( "interaction",
        [
          Alcotest.test_case "edges" `Quick test_edges;
          Alcotest.test_case "chain order" `Quick test_order_chain;
          Alcotest.test_case "cycle" `Quick test_order_cycle;
          Alcotest.test_case "ancilla last" `Quick test_order_ancilla_last;
        ] );
      ( "transform",
        [
          Alcotest.test_case "BV structure" `Quick test_transform_bv_structure;
          Alcotest.test_case "BV equivalence (all paper strings)" `Slow
            test_transform_bv_equivalence_all;
          Alcotest.test_case "sound mode on BV" `Quick test_transform_sound_bv;
          Alcotest.test_case "hidden string recovered" `Quick
            test_transform_hidden_string_recovered;
          Alcotest.test_case "rejects multi-control" `Quick
            test_transform_rejects_multi_control;
          Alcotest.test_case "rejects measured input" `Quick
            test_transform_rejects_measured_input;
          Alcotest.test_case "rejects no-data" `Quick test_transform_no_data_qubits;
          Alcotest.test_case "dyn1 violations" `Quick
            test_transform_dyn1_has_violations;
          Alcotest.test_case "sound rejects dyn1" `Quick
            test_transform_sound_rejects_dyn1;
          Alcotest.test_case "answer-answer gate" `Quick
            test_transform_answer_answer_gate;
          Alcotest.test_case "outputs lint clean" `Quick
            test_transform_outputs_lint_clean;
          Alcotest.test_case "conditioned value" `Quick
            test_transform_conditioned_gate_value;
        ] );
      ( "direct_mct",
        [
          Alcotest.test_case "structure" `Quick test_direct_mct_structure;
          Alcotest.test_case "requires flag" `Quick test_direct_mct_requires_flag;
          Alcotest.test_case "reduction routes" `Quick
            test_mct_reduction_routes_transform;
          Alcotest.test_case "basis-state exact" `Quick
            test_direct_mct_basis_state_exact;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "detects difference" `Quick
            test_equivalence_detects_difference;
        ] );
      ( "pipeline_properties",
        [
          QCheck_alcotest.to_alcotest
            (QCheck2.Test.make
               ~name:"pipeline dyn2 handles synthesized oracles" ~count:25
               QCheck2.Gen.(pair (int_range 2 3) (int_bound 0xFF))
               (fun (arity, table) ->
                 let truth = Algorithms.Boolean_fun.create ~arity ~table in
                 let oracle = Algorithms.Oracle.synthesize ~name:"prop" truth in
                 let dj = Algorithms.Dj.circuit oracle in
                 let out = Dqc.Pipeline.compile dj in
                 out.Dqc.Pipeline.qubits = 2
                 && (out.Dqc.Pipeline.certified
                    || match out.Dqc.Pipeline.tv with
                       | Some tv -> tv >= -1e-9 && tv <= 1. +. 1e-9
                       | None -> false)));
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "default" `Quick test_pipeline_default;
          Alcotest.test_case "sound multislot native" `Quick
            test_pipeline_sound_multislot_native;
          Alcotest.test_case "direct mct" `Quick test_pipeline_direct_mct;
        ] );
      ( "multi_transform",
        [
          Alcotest.test_case "slots=1 matches Transform" `Quick
            test_multi_slots1_matches_transform;
          Alcotest.test_case "BV exact at any width" `Quick
            test_multi_slots_bv_exact_everywhere;
          Alcotest.test_case "one extra slot fixes dyn1" `Quick
            test_multi_one_extra_slot_fixes_dyn1;
          Alcotest.test_case "full width" `Quick
            test_multi_full_width_is_traditional_shape;
          Alcotest.test_case "cyclic needs width" `Quick
            test_multi_cyclic_needs_width;
          Alcotest.test_case "invalid slots" `Quick test_multi_invalid_slots;
          Alcotest.test_case "direct mct width" `Quick
            test_multi_direct_mct_width;
        ] );
      ( "order_search",
        [
          Alcotest.test_case "override" `Quick test_order_override;
          Alcotest.test_case "bv all orders" `Quick test_order_search_bv;
          Alcotest.test_case "constrained" `Quick test_order_search_constrained;
          Alcotest.test_case "deviation order-invariant" `Slow
            test_order_invariance_of_deviation;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "verdicts" `Quick test_analysis_verdicts;
          Alcotest.test_case "report fields" `Quick test_analysis_report_fields;
          Alcotest.test_case "min slots dyn1" `Quick test_analysis_min_slots_dyn1;
          Alcotest.test_case "interaction dot" `Quick test_interaction_to_dot;
        ] );
      ( "toffoli_scheme",
        [
          Alcotest.test_case "to_string" `Quick test_scheme_to_string;
          Alcotest.test_case "prepare" `Quick test_scheme_prepare;
          Alcotest.test_case "traditional raises" `Quick
            test_scheme_traditional_transform_raises;
          Alcotest.test_case "dyn2 exact (2-input)" `Slow
            test_dyn2_exact_for_two_input_oracles;
          Alcotest.test_case "dyn1 inexact" `Slow test_dyn1_inexact;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_oracle_shaped_exact;
            prop_no_violations_implies_exact;
            prop_sound_mode_exact;
          ] );
    ]
