(* Symbolic path-sum certifier: exact ring arithmetic laws, static
   netlist identities, Proved on every Table I/II benchmark under both
   dynamic schemes (with no simulation backend involved), Proved past
   the exact checkers' 12-qubit limit, and Refuted with a concrete
   measurement-branch counterexample on a corrupted transformation. *)

open Circuit
module R = Verify.Ring
module C = Verify.Certify

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let u ?controls g t = Instruction.Unitary (Instruction.app ?controls g t)

(* ------------------------------------------------------------------ *)
(* Ring laws: exact arithmetic in Z[omega, 1/sqrt2]                   *)

let samples =
  [
    R.zero;
    R.one;
    R.i;
    R.omega_pow 1;
    R.omega_pow 5;
    R.make 1 2 3 4;
    R.make ~s:3 1 0 (-2) 5;
  ]

let test_ring_group_laws () =
  check_bool "omega^8 = 1" true (R.equal (R.omega_pow 8) R.one);
  check_bool "omega^4 = -1" true (R.equal (R.omega_pow 4) (R.neg R.one));
  check_bool "omega^2 = i" true (R.equal (R.omega_pow 2) R.i);
  List.iter
    (fun x ->
      check_bool "x + 0 = x" true (R.equal (R.add x R.zero) x);
      check_bool "x * 1 = x" true (R.equal (R.mul x R.one) x);
      check_bool "x - x = 0" true (R.is_zero (R.sub x x)))
    samples;
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          check_bool "commutative +" true
            (R.equal (R.add x y) (R.add y x));
          check_bool "commutative *" true
            (R.equal (R.mul x y) (R.mul y x));
          List.iter
            (fun z ->
              check_bool "distributive" true
                (R.equal
                   (R.mul x (R.add y z))
                   (R.add (R.mul x y) (R.mul x z))))
            samples)
        samples)
    samples

let test_ring_conj_norm () =
  List.iter
    (fun x ->
      check_bool "norm_sq = x * conj x" true
        (R.equal (R.norm_sq x) (R.mul x (R.conj x))))
    samples;
  check_bool "|omega^3|^2 = 1" true (R.equal (R.norm_sq (R.omega_pow 3)) R.one);
  check_bool "|1+i|^2 = 2" true
    (R.equal (R.norm_sq (R.add R.one R.i)) (R.of_int 2))

let test_ring_root2_normalization () =
  (* 2 / sqrt2^2 = 1: the denominator exponent must actually cancel *)
  check_bool "2/sqrt2^2 = 1" true (R.equal (R.div_root2 2 (R.of_int 2)) R.one);
  (* sqrt2 = omega - omega^3, so (omega - omega^3)/sqrt2 = 1 *)
  let root2 = R.sub (R.omega_pow 1) (R.omega_pow 3) in
  check_bool "sqrt2/sqrt2 = 1" true (R.equal (R.div_root2 1 root2) R.one);
  check_bool "sqrt2 * sqrt2 = 2" true
    (R.equal (R.mul root2 root2) (R.of_int 2))

(* V = (1/2) [[1+i, 1-i], [1-i, 1+i]] squares exactly to X — the
   identity underlying the paper's Fig 3/4 circuits, checked in the
   ring with no floats involved. *)
let test_ring_v_squared_is_x () =
  let a = R.div_root2 2 (R.add R.one R.i) in
  let b = R.div_root2 2 (R.sub R.one R.i) in
  let diag = R.add (R.mul a a) (R.mul b b) in
  let off = R.add (R.mul a b) (R.mul b a) in
  check_bool "diagonal of V*V is 0" true (R.is_zero diag);
  check_bool "off-diagonal of V*V is 1" true (R.equal off R.one)

(* ------------------------------------------------------------------ *)
(* Static identities through the symbolic executor                    *)

let dd = [| Circ.Data; Circ.Data |]
let ddd = [| Circ.Data; Circ.Data; Circ.Data |]

let test_static_involutions () =
  let id2 = Circ.create ~roles:dd ~num_bits:0 [] in
  let cxcx =
    Circ.create ~roles:dd ~num_bits:0
      [ u ~controls:[ 0 ] Gate.X 1; u ~controls:[ 0 ] Gate.X 1 ]
  in
  let hh = Circ.create ~roles:dd ~num_bits:0 [ u Gate.H 0; u Gate.H 0 ] in
  check_bool "CX CX = I (symbolic inputs)" true (C.check_static cxcx id2);
  check_bool "H H = I (symbolic inputs)" true (C.check_static hh id2);
  check_bool "CX CX = I (from zero)" true
    (C.check_static ~inputs:`Zero cxcx id2)

let test_static_toffoli_decompositions () =
  let ccx = Circ.create ~roles:ddd ~num_bits:0 [ u ~controls:[ 0; 1 ] Gate.X 2 ] in
  let clifford_t = Decompose.Pass.substitute_toffoli `Clifford_t ccx in
  let barenco = Decompose.Pass.substitute_toffoli `Barenco ccx in
  check_bool "Clifford+T decomposition = CCX" true
    (C.check_static ccx clifford_t);
  check_bool "Barenco decomposition = CCX" true (C.check_static ccx barenco);
  check_bool "Clifford+T = Barenco" true (C.check_static clifford_t barenco)

let test_static_is_not_trivially_true () =
  let id2 = Circ.create ~roles:dd ~num_bits:0 [] in
  let x0 = Circ.create ~roles:dd ~num_bits:0 [ u Gate.X 0 ] in
  check_bool "X /= I" false (C.check_static x0 id2)

(* ------------------------------------------------------------------ *)
(* Table I / Table II benchmarks, both schemes                        *)

let certify_traditional name traditional =
  let r = Dqc.Transform.transform traditional in
  check_bool
    (name ^ " proved")
    true
    (C.is_proved (Dqc.Certifier.certify traditional r))

let test_table1_certified () =
  List.iter
    (fun s -> certify_traditional ("BV_" ^ s) (Algorithms.Bv.circuit s))
    Algorithms.Bv.paper_benchmarks;
  List.iter
    (fun (o : Algorithms.Oracle.t) ->
      certify_traditional o.name (Algorithms.Dj.circuit o))
    Algorithms.Dj.toffoli_free_oracles

let certify_scheme scheme (o : Algorithms.Oracle.t) =
  let dj = Algorithms.Dj.circuit o in
  let r = Dqc.Toffoli_scheme.transform scheme dj in
  ( Dqc.Certifier.certify dj r,
    Printf.sprintf "%s %s" o.name (Dqc.Toffoli_scheme.to_string scheme) )

let test_table2_certified () =
  List.iter
    (fun scheme ->
      List.iter
        (fun (o : Algorithms.Oracle.t) ->
          let verdict, label = certify_scheme scheme o in
          check_bool (label ^ " proved") true (C.is_proved verdict))
        Algorithms.Dj_toffoli.oracles)
    [ Dqc.Toffoli_scheme.Dynamic_1; Dqc.Toffoli_scheme.Dynamic_2 ]

(* dynamic-2 on the violation-free 2-input oracles must reach the
   strongest claim — full channel equality, not just faithful
   dynamics *)
let test_dyn2_channel_scope () =
  List.iter
    (fun name ->
      let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name name) in
      let verdict, label = certify_scheme Dqc.Toffoli_scheme.Dynamic_2 o in
      match verdict with
      | C.Proved { scope = C.Channel; _ } -> ()
      | C.Proved { scope = C.Dynamics; _ } ->
          Alcotest.fail (label ^ ": proved only dynamics scope")
      | C.Refuted _ | C.Unknown _ -> Alcotest.fail (label ^ ": not proved"))
    [ "AND"; "NAND"; "OR"; "NOR" ]

(* dynamic-1 deviates from the traditional schedule (recorded
   violations, Fig 7 accuracy loss): the certifier must prove the
   dynamics faithful and surface a concrete schedule counterexample *)
let test_dyn1_dynamics_scope_with_cex () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
  let verdict, label = certify_scheme Dqc.Toffoli_scheme.Dynamic_1 o in
  match verdict with
  | C.Proved { scope = C.Dynamics; schedule_cex = Some cex; _ } ->
      check_bool (label ^ " cex probabilities differ") true
        (cex.C.p_left <> cex.C.p_right)
  | C.Proved _ -> Alcotest.fail (label ^ ": expected dynamics scope + cex")
  | C.Refuted _ | C.Unknown _ -> Alcotest.fail (label ^ ": not proved")

(* ------------------------------------------------------------------ *)
(* Past the exact checkers: 13 and 17 qubits                          *)

let test_wide_instances_certified () =
  List.iter
    (fun scheme ->
      let verdict, label =
        certify_scheme scheme (Algorithms.Mct_bench.and_n 12)
      in
      check_bool (label ^ " proved at 13 qubits") true (C.is_proved verdict))
    [ Dqc.Toffoli_scheme.Dynamic_1; Dqc.Toffoli_scheme.Dynamic_2 ];
  let verdict, label =
    certify_scheme Dqc.Toffoli_scheme.Dynamic_1 (Algorithms.Mct_bench.xor_n 16)
  in
  match verdict with
  | C.Proved { scope = C.Channel; _ } -> ()
  | C.Proved _ | C.Refuted _ | C.Unknown _ ->
      Alcotest.fail (label ^ ": expected channel proof at 17 qubits")

(* Certification must never dispatch a simulation backend — that is
   the whole point.  The Obs counters are the witness. *)
let test_no_backend_dispatch () =
  let o = Algorithms.Mct_bench.and_n 12 in
  let dj = Algorithms.Dj.circuit o in
  let r = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_1 dj in
  let collector, verdict =
    Obs.with_collector (fun () -> Dqc.Certifier.certify dj r)
  in
  check_bool "proved" true (C.is_proved verdict);
  let counters = Obs.Collector.counters collector in
  let prefixed p (name, _) =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  check_bool "verify counters recorded" true
    (List.exists (prefixed "verify.") counters);
  Alcotest.(check (list string))
    "no backend.* dispatches" []
    (List.map fst (List.filter (prefixed "backend.") counters))

(* ------------------------------------------------------------------ *)
(* Refutation: fault injection yields a concrete counterexample       *)

let test_corrupted_refuted () =
  let o = Option.get (Algorithms.Dj.oracle_by_name "DJ_XOR") in
  let dj = Algorithms.Dj.circuit o in
  let r = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_1 dj in
  let r = { r with Dqc.Transform.circuit = Dqc.Certifier.corrupt r.circuit } in
  match Dqc.Certifier.certify dj r with
  | C.Refuted cex ->
      check_bool "branch is named" true (cex.C.bits <> []);
      check_bool "probabilities differ" true (cex.C.p_left <> cex.C.p_right)
  | C.Proved _ -> Alcotest.fail "corrupted circuit proved"
  | C.Unknown why -> Alcotest.fail ("corrupted circuit unknown: " ^ why)

let test_corrupt_injects_before_measure () =
  let o = Option.get (Algorithms.Dj.oracle_by_name "DJ_XOR") in
  let dj = Algorithms.Dj.circuit o in
  let r = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_1 dj in
  let n = List.length (Circ.instructions r.circuit) in
  check_int "exactly one gate injected" (n + 1)
    (List.length (Circ.instructions (Dqc.Certifier.corrupt r.circuit)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "verify"
    [
      ( "ring",
        [
          Alcotest.test_case "group laws" `Quick test_ring_group_laws;
          Alcotest.test_case "conj and norm" `Quick test_ring_conj_norm;
          Alcotest.test_case "sqrt2 normalization" `Quick
            test_ring_root2_normalization;
          Alcotest.test_case "V*V = X exactly" `Quick test_ring_v_squared_is_x;
        ] );
      ( "static identities",
        [
          Alcotest.test_case "involutions" `Quick test_static_involutions;
          Alcotest.test_case "Toffoli decompositions" `Quick
            test_static_toffoli_decompositions;
          Alcotest.test_case "not trivially true" `Quick
            test_static_is_not_trivially_true;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "Table I certified" `Quick test_table1_certified;
          Alcotest.test_case "Table II certified (both schemes)" `Quick
            test_table2_certified;
          Alcotest.test_case "dyn2 channel scope" `Quick
            test_dyn2_channel_scope;
          Alcotest.test_case "dyn1 dynamics scope + cex" `Quick
            test_dyn1_dynamics_scope_with_cex;
          Alcotest.test_case "13 and 17 qubits" `Quick
            test_wide_instances_certified;
          Alcotest.test_case "no backend dispatch" `Quick
            test_no_backend_dispatch;
        ] );
      ( "refutation",
        [
          Alcotest.test_case "corrupted is refuted" `Quick
            test_corrupted_refuted;
          Alcotest.test_case "corrupt shape" `Quick
            test_corrupt_injects_before_measure;
        ] );
    ]
