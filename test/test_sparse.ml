(* Differential validation of the sparse basis-amplitude engine
   (Sim.Sparse) against the dense engine: amplitude-for-amplitude
   agreement over hundreds of random dynamic circuits, identical
   seed-deterministic shot streams through the engine-polymorphic
   runner, and the over-the-dense-cap basis-sparse acceptance
   workload (a >= 28-qubit dyn2-substituted Toffoli ladder). *)

open Circuit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let hist_pairs = Alcotest.(list (pair int int))

let check_hist msg a b =
  Alcotest.check hist_pairs msg (Sim.Runner.to_list a) (Sim.Runner.to_list b)

let dense_engine = (module Sim.Statevector.Dense_engine : Sim.Engine.S)
let sparse_engine = (module Sim.Sparse.Sparse_engine : Sim.Engine.S)

(* Random dynamic circuits from the same family as the analyze-gate
   differential suite: Clifford+T 1-qubit gates, CX/CZ, Toffolis,
   mid-circuit measures, resets and conditioned gates. *)
let random_dynamic_circuit rng =
  let nq = 2 + Random.State.int rng 7 in
  let nb = 1 + Random.State.int rng 2 in
  let m = 5 + Random.State.int rng 28 in
  let gates = Gate.[ H; X; Y; Z; S; Sdg; T; Tdg; V; Rz 0.37 ] in
  let any_gate () = List.nth gates (Random.State.int rng (List.length gates)) in
  let instr _ =
    match Random.State.int rng 10 with
    | 0 | 1 | 2 | 3 ->
        Instruction.Unitary
          (Instruction.app (any_gate ()) (Random.State.int rng nq))
    | 4 | 5 ->
        let c = Random.State.int rng nq and t = Random.State.int rng nq in
        let g = if Random.State.bool rng then Gate.X else Gate.Z in
        if c = t then Instruction.Unitary (Instruction.app g t)
        else Instruction.Unitary (Instruction.app ~controls:[ c ] g t)
    | 6 ->
        let c1 = Random.State.int rng nq
        and c2 = Random.State.int rng nq
        and t = Random.State.int rng nq in
        if c1 = t || c2 = t || c1 = c2 then
          Instruction.Unitary (Instruction.app Gate.X t)
        else Instruction.Unitary (Instruction.app ~controls:[ c1; c2 ] Gate.X t)
    | 7 ->
        Instruction.Measure
          { qubit = Random.State.int rng nq; bit = Random.State.int rng nb }
    | 8 -> Instruction.Reset (Random.State.int rng nq)
    | _ ->
        Instruction.Conditioned
          ( Instruction.cond_bit (Random.State.int rng nb)
              (Random.State.bool rng),
            Instruction.app (any_gate ()) (Random.State.int rng nq) )
  in
  let roles = Array.make nq Circ.Data in
  Circ.create ~roles ~num_bits:nb (List.init m instr)

(* Sparse kernels mirror the dense float expressions term for term, so
   the engines agree to rounding noise; the pruning threshold
   (|amp|^2 <= 1e-24) is far below this tolerance. *)
let tolerance = 1e-9

(* Replay one circuit on both engines from the same seed and compare
   the final states amplitude for amplitude, plus the classical
   register.  Randomness is consumed only at measure/reset, in source
   order, so a shared seed drives identical branch choices. *)
let engines_agree ~seed c =
  let p = Sim.Program.compile c in
  let dense = Sim.Program.run ~rng:(Random.State.make [| seed |]) p in
  let sparse = Sim.Sparse.run ~rng:(Random.State.make [| seed |]) p in
  let amps = Sim.State.amplitudes dense in
  let ok = ref (Sim.State.register dense = Sim.Sparse.register sparse) in
  for k = 0 to Linalg.Cvec.dim amps - 1 do
    let a = Linalg.Cvec.get amps k and b = Sim.Sparse.amplitude sparse k in
    if
      abs_float (a.Complex.re -. b.Complex.re) > tolerance
      || abs_float (a.Complex.im -. b.Complex.im) > tolerance
    then ok := false
  done;
  !ok

let test_differential_random_circuits () =
  let rng = Random.State.make [| 0x5AB5E |] in
  let failures = ref 0 in
  for k = 0 to 219 do
    let c = random_dynamic_circuit rng in
    List.iter
      (fun seed -> if not (engines_agree ~seed c) then incr failures)
      [ 11; 12 + k; 4242 ]
  done;
  check_int "amplitude mismatches over 220 circuits x 3 seeds" 0 !failures

(* The engine-polymorphic runner must produce byte-identical
   histograms on both engines for a fixed seed: shot i's register
   depends only on (seed, i), never on the state representation. *)
let test_shot_streams_deterministic_across_engines () =
  let rng = Random.State.make [| 0xBEEF |] in
  for k = 0 to 9 do
    let c = random_dynamic_circuit rng in
    let dense = Sim.Runner.run_shots ~seed:(100 + k) ~engine:dense_engine ~shots:150 c in
    let sparse = Sim.Runner.run_shots ~seed:(100 + k) ~engine:sparse_engine ~shots:150 c in
    check_hist (Printf.sprintf "circuit %d" k) dense sparse
  done

(* ------------------------------------------------------------------ *)
(* The basis-sparse acceptance workload: a Toffoli ladder computing
   the AND of its inputs, substituted with the paper's ancilla-
   unrolled dynamic-2 netlist.  Inputs are prepared with X gates, so
   every per-shot state stays within a handful of basis amplitudes
   regardless of width.                                               *)

(* [inputs] X-prepared input qubits 0..k-1, ladder ancillas k..2k-3;
   the last ancilla holds AND of all inputs, measured into bit 0. *)
let toffoli_ladder ~inputs ~ones =
  let k = inputs in
  let nq = (2 * k) - 1 in
  let b = Circ.Builder.make ~roles:(Array.make nq Circ.Data) ~num_bits:1 () in
  List.iter (fun q -> Circ.Builder.x b q) ones;
  Circ.Builder.ccx b 0 1 k;
  for j = 1 to k - 2 do
    Circ.Builder.ccx b (k + j - 1) (j + 1) (k + j)
  done;
  Circ.Builder.measure b ~qubit:(nq - 1) ~bit:0;
  Circ.Builder.build b

let dyn2_ladder ~inputs ~ones =
  Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_2
    (toffoli_ladder ~inputs ~ones)

(* Ground truth at a dense-simulable width: the dyn2 ladder computes
   AND on every input combination, identically on both engines. *)
let test_dyn2_ladder_small_width () =
  let k = 4 in
  for assignment = 0 to (1 lsl k) - 1 do
    let ones =
      List.filter (fun q -> assignment land (1 lsl q) <> 0)
        (List.init k (fun q -> q))
    in
    let c = dyn2_ladder ~inputs:k ~ones in
    check_bool
      (Printf.sprintf "engines agree on assignment %d" assignment)
      true
      (engines_agree ~seed:assignment c);
    let st =
      Sim.Sparse.run
        ~rng:(Random.State.make [| 7 |])
        (Sim.Program.compile c)
    in
    check_bool
      (Printf.sprintf "AND on assignment %d" assignment)
      (assignment = (1 lsl k) - 1)
      (Sim.Sparse.get_bit st 0)
  done

let wide_inputs = 15

let test_dense_cap_exceeded () =
  let c = dyn2_ladder ~inputs:wide_inputs ~ones:(List.init wide_inputs Fun.id) in
  let nq = Circ.num_qubits c in
  check_bool "at least 28 qubits" true (nq >= 28);
  Alcotest.check_raises "dense create"
    (Sim.State.Dense_cap_exceeded
       { qubits = nq; max_qubits = Sim.State.max_qubits })
    (fun () -> ignore (Sim.State.create nq ~num_bits:1))

let test_wide_basis_sparse_acceptance () =
  let all = List.init wide_inputs Fun.id in
  let run ones =
    let c = dyn2_ladder ~inputs:wide_inputs ~ones in
    Sim.Sparse.run ~rng:(Random.State.make [| 3 |]) (Sim.Program.compile c)
  in
  let st = run all in
  check_bool "AND of all-ones inputs" true (Sim.Sparse.get_bit st 0);
  check_bool "state stays basis-sparse" true (Sim.Sparse.nnz st <= 4);
  let st0 = run (List.filter (fun q -> q <> 7) all) in
  check_bool "AND with a zero input" false (Sim.Sparse.get_bit st0 0)

(* Backend integration over the cap: Auto must plan the whole circuit
   sparse (dense cannot even allocate), the run must be deterministic,
   and the forced sparse policy must agree with it. *)
let test_wide_backend_auto () =
  let c = dyn2_ladder ~inputs:wide_inputs ~ones:(List.init wide_inputs Fun.id) in
  (match Sim.Backend.select ~shots:64 c with
  | `Sparse -> ()
  | `Dense | `Stabilizer | `Exact | `Hybrid ->
      Alcotest.fail "expected the sparse plan over the dense cap");
  let auto = Sim.Backend.run ~seed:5 ~shots:64 c in
  let forced =
    Sim.Backend.run ~policy:Sim.Backend.Sparse_statevector ~seed:5 ~shots:64 c
  in
  check_hist "auto = forced sparse" auto forced;
  check_int "deterministic outcome" 64
    (List.fold_left max 0 (List.map snd (Sim.Runner.to_list auto)))

(* Conversions: densify/sparsify roundtrips preserve amplitudes and
   the classical register. *)
let test_conversions_roundtrip () =
  let rng = Random.State.make [| 0xC0FFEE |] in
  for k = 0 to 19 do
    let c = random_dynamic_circuit rng in
    let p = Sim.Program.compile c in
    let sp = Sim.Sparse.run ~rng:(Random.State.make [| k |]) p in
    let round = Sim.Sparse.of_state (Sim.Sparse.to_state sp) in
    let ok = ref (Sim.Sparse.register sp = Sim.Sparse.register round) in
    let dim = 1 lsl Sim.Sparse.num_qubits sp in
    for i = 0 to dim - 1 do
      let a = Sim.Sparse.amplitude sp i and b = Sim.Sparse.amplitude round i in
      if
        abs_float (a.Complex.re -. b.Complex.re) > tolerance
        || abs_float (a.Complex.im -. b.Complex.im) > tolerance
      then ok := false
    done;
    check_bool (Printf.sprintf "roundtrip %d" k) true !ok
  done

let () =
  Alcotest.run "sparse"
    [
      ( "differential",
        [
          Alcotest.test_case "220 random dynamic circuits" `Slow
            test_differential_random_circuits;
          Alcotest.test_case "shot streams across engines" `Slow
            test_shot_streams_deterministic_across_engines;
          Alcotest.test_case "conversions roundtrip" `Quick
            test_conversions_roundtrip;
        ] );
      ( "dyn2 ladder",
        [
          Alcotest.test_case "small-width ground truth" `Quick
            test_dyn2_ladder_small_width;
          Alcotest.test_case "dense cap exceeded" `Quick
            test_dense_cap_exceeded;
          Alcotest.test_case "wide basis-sparse acceptance" `Quick
            test_wide_basis_sparse_acceptance;
          Alcotest.test_case "wide backend auto" `Quick test_wide_backend_auto;
        ] );
    ]
