(* Circuit linter: abstract-domain transfer function, the negative
   corpus (one hand-built circuit per pass, which must trigger exactly
   that diagnostic), and the positive gate — every Table I/II
   benchmark and its dynamic-1/dynamic-2 compilation lints clean. *)

open Circuit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let u ?controls g t = Instruction.Unitary (Instruction.app ?controls g t)

let of_pass name (r : Lint.report) =
  List.filter (fun (d : Lint.Diagnostic.t) -> d.pass = name) r.diagnostics

let severities sev (r : Lint.report) =
  List.filter (fun (d : Lint.Diagnostic.t) -> d.severity = sev) r.diagnostics

(* The corpus contract: the target pass fires exactly once, and no
   OTHER diagnostic of equal-or-higher severity muddies the signal. *)
let expect_exactly ~pass ~severity r =
  let fired = of_pass pass r in
  Alcotest.(check int)
    (pass ^ " fires once")
    1 (List.length fired);
  let d = List.hd fired in
  check_bool (pass ^ " severity") true (d.Lint.Diagnostic.severity = severity);
  let noise =
    List.filter
      (fun (x : Lint.Diagnostic.t) ->
        x.pass <> pass
        && Lint.Diagnostic.severity_rank x.severity
           <= Lint.Diagnostic.severity_rank severity)
      r.diagnostics
  in
  Alcotest.(check (list string))
    (pass ^ ": no other diagnostics at this severity")
    []
    (List.map (fun (x : Lint.Diagnostic.t) -> x.pass) noise)

(* ------------------------------------------------------------------ *)
(* Abstract domain and transfer function                              *)

let d1 = [| Circ.Data |]

let states c =
  let t = Lint.Trace.run c in
  Lint.Trace.final t

let test_transfer_measure_known () =
  (* measuring a provably |0> qubit writes Known false, no collapse *)
  let c =
    Circ.create ~roles:d1 ~num_bits:1 [ Instruction.Measure { qubit = 0; bit = 0 } ]
  in
  let f = states c in
  check_bool "bit known 0" true (Lint.State.bit f 0 = Lint.Absdom.Bit.Known false);
  check_bool "qubit stays zero" true
    (Lint.State.qubit f 0 = Lint.Absdom.Qubit.Zero)

let test_transfer_measure_superposed () =
  let c =
    Circ.create ~roles:d1 ~num_bits:1
      [ u Gate.H 0; Instruction.Measure { qubit = 0; bit = 0 } ]
  in
  let f = states c in
  check_bool "bit written" true (Lint.State.bit f 0 = Lint.Absdom.Bit.Written);
  check_bool "qubit collapsed" true
    (Lint.State.qubit f 0 = Lint.Absdom.Qubit.Collapsed)

let test_transfer_x_chain () =
  let c = Circ.create ~roles:d1 ~num_bits:0 [ u Gate.X 0; u Gate.X 0 ] in
  check_bool "x x = zero" true
    (Lint.State.qubit (states c) 0 = Lint.Absdom.Qubit.Zero)

let test_transfer_conditioned_join () =
  (* a conditioned X under an unknown bit joins One with Zero = Basis *)
  let c =
    Circ.create ~roles:[| Circ.Data; Circ.Answer |] ~num_bits:1
      [
        u Gate.H 0;
        Instruction.Measure { qubit = 0; bit = 0 };
        Instruction.Conditioned (Instruction.cond_bit 0 true, Instruction.app Gate.X 1);
      ]
  in
  check_bool "answer is basis" true
    (Lint.State.qubit (states c) 1 = Lint.Absdom.Qubit.Basis)

let test_transfer_entangling_cx () =
  (* CX with a superposed control on a |0> target: both stay diagonal
     in reduced state, so the target is Basis, not Superposed *)
  let c =
    Circ.create ~roles:[| Circ.Data; Circ.Data |] ~num_bits:0
      [ u Gate.H 0; u ~controls:[ 0 ] Gate.X 1 ]
  in
  let f = states c in
  check_bool "control superposed" true
    (Lint.State.qubit f 0 = Lint.Absdom.Qubit.Superposed);
  check_bool "target basis" true
    (Lint.State.qubit f 1 = Lint.Absdom.Qubit.Basis)

let test_join_lattice () =
  let open Lint.Absdom.Qubit in
  check_bool "zero one" true (join Zero One = Basis);
  check_bool "zero superposed" true (join Zero Superposed = Top);
  check_bool "collapsed collapsed" true (join Collapsed Collapsed = Collapsed);
  check_bool "collapsed basis drops flag" true (join Collapsed Zero = Basis)

(* ------------------------------------------------------------------ *)
(* Negative corpus: one circuit per pass                              *)

let corpus_use_after_measure () =
  let c =
    Circ.create ~roles:d1 ~num_bits:2
      [
        u Gate.H 0;
        Instruction.Measure { qubit = 0; bit = 0 };
        u Gate.X 0;
        Instruction.Measure { qubit = 0; bit = 1 };
      ]
  in
  expect_exactly ~pass:"use-after-measure" ~severity:Lint.Diagnostic.Error
    (Lint.run c)

let corpus_cond_unmeasured_bit () =
  let c =
    Circ.create ~roles:d1 ~num_bits:1
      [
        Instruction.Conditioned
          (Instruction.cond_bit 0 true, Instruction.app Gate.X 0);
      ]
  in
  expect_exactly ~pass:"cond-unmeasured-bit" ~severity:Lint.Diagnostic.Error
    (Lint.run c)

let corpus_contradictory_condition () =
  let contradiction = { Instruction.bits = [ (0, true); (0, false) ] } in
  let c =
    Circ.create ~roles:d1 ~num_bits:2
      [
        u Gate.H 0;
        Instruction.Measure { qubit = 0; bit = 0 };
        Instruction.Reset 0;
        Instruction.Conditioned (contradiction, Instruction.app Gate.X 0);
        Instruction.Measure { qubit = 0; bit = 1 };
      ]
  in
  expect_exactly ~pass:"contradictory-condition" ~severity:Lint.Diagnostic.Error
    (Lint.run c)

let corpus_contradicts_known_bit () =
  (* the measured qubit is provably |0>, so `if (c0 == 1)` never fires *)
  let c =
    Circ.create ~roles:[| Circ.Data; Circ.Answer |] ~num_bits:1
      [
        Instruction.Measure { qubit = 0; bit = 0 };
        Instruction.Conditioned
          (Instruction.cond_bit 0 true, Instruction.app Gate.X 1);
      ]
  in
  expect_exactly ~pass:"contradictory-condition"
    ~severity:Lint.Diagnostic.Warning (Lint.run c)

let corpus_measurement_clobbers_bit () =
  let c =
    Circ.create ~roles:d1 ~num_bits:1
      [
        u Gate.H 0;
        Instruction.Measure { qubit = 0; bit = 0 };
        Instruction.Reset 0;
        u Gate.H 0;
        Instruction.Measure { qubit = 0; bit = 0 };
      ]
  in
  expect_exactly ~pass:"measurement-clobbers-bit"
    ~severity:Lint.Diagnostic.Warning (Lint.run c)

let corpus_redundant_reset () =
  let c = Circ.create ~roles:d1 ~num_bits:0 [ Instruction.Reset 0 ] in
  expect_exactly ~pass:"redundant-reset" ~severity:Lint.Diagnostic.Hint
    (Lint.run c)

let corpus_dead_gate () =
  let c =
    Circ.create ~roles:d1 ~num_bits:1
      [
        u Gate.H 0;
        Instruction.Measure { qubit = 0; bit = 0 };
        Instruction.Reset 0;
        u Gate.X 0;
      ]
  in
  expect_exactly ~pass:"dead-gate" ~severity:Lint.Diagnostic.Warning (Lint.run c)

let corpus_dead_bit () =
  let c =
    Circ.create ~roles:d1 ~num_bits:2
      [
        u Gate.H 0;
        Instruction.Measure { qubit = 0; bit = 0 };
        Instruction.Reset 0;
        u Gate.H 0;
        Instruction.Measure { qubit = 0; bit = 1 };
      ]
  in
  expect_exactly ~pass:"dead-bit" ~severity:Lint.Diagnostic.Hint (Lint.run c)

let corpus_ancilla_not_zero () =
  let c =
    Circ.create ~roles:[| Circ.Data; Circ.Ancilla |] ~num_bits:0
      [ u Gate.X 1 ]
  in
  expect_exactly ~pass:"ancilla-not-zero" ~severity:Lint.Diagnostic.Error
    (Lint.run c)

let corpus_ancilla_unprovable_hint () =
  let c =
    Circ.create ~roles:[| Circ.Data; Circ.Ancilla |] ~num_bits:0
      [ u Gate.H 0; u ~controls:[ 0 ] Gate.X 1 ]
  in
  expect_exactly ~pass:"ancilla-not-zero" ~severity:Lint.Diagnostic.Hint
    (Lint.run c)

let corpus_dqc_live_data () =
  let c =
    Circ.create ~roles:[| Circ.Data; Circ.Data |] ~num_bits:2
      [
        u Gate.H 0;
        u Gate.H 1;
        Instruction.Measure { qubit = 0; bit = 0 };
        Instruction.Measure { qubit = 1; bit = 1 };
      ]
  in
  expect_exactly ~pass:"dqc-live-data" ~severity:Lint.Diagnostic.Error
    (Lint.run ~passes:(Lint.Dqc_rules.passes ()) c)

let corpus_dqc_answer_reset () =
  let c =
    Circ.create ~roles:[| Circ.Data; Circ.Answer |] ~num_bits:0
      [ u Gate.X 1; Instruction.Reset 1 ]
  in
  expect_exactly ~pass:"dqc-answer-reset" ~severity:Lint.Diagnostic.Error
    (Lint.run ~passes:(Lint.Dqc_rules.passes ()) c)

let corpus_cond_after_clobber () =
  (* bit 1 is written by measuring q0 immediately after its reset, so
     the condition below provably tests the constant 0 *)
  let c =
    Circ.create ~roles:[| Circ.Data; Circ.Answer |] ~num_bits:2
      [
        u Gate.H 0;
        Instruction.Measure { qubit = 0; bit = 0 };
        Instruction.Reset 0;
        Instruction.Measure { qubit = 0; bit = 1 };
        Instruction.Conditioned
          (Instruction.cond_bit 1 true, Instruction.app Gate.X 1);
      ]
  in
  expect_exactly ~pass:"cond-after-clobber" ~severity:Lint.Diagnostic.Warning
    (Lint.run ~passes:Lint.certifier_passes c)

let corpus_nonzero_global_phase_reset () =
  (* resetting a superposed qubit discards coherence: the certifier
     must ghost the discarded state *)
  let c =
    Circ.create ~roles:d1 ~num_bits:0 [ u Gate.H 0; Instruction.Reset 0 ]
  in
  expect_exactly ~pass:"nonzero-global-phase-reset"
    ~severity:Lint.Diagnostic.Warning
    (Lint.run ~passes:Lint.certifier_passes c)

(* A gate between the reset and the measurement re-randomizes the
   qubit: the condition is no longer constant, so no diagnostic. *)
let corpus_cond_after_clobber_negative () =
  let c =
    Circ.create ~roles:[| Circ.Data; Circ.Answer |] ~num_bits:2
      [
        u Gate.H 0;
        Instruction.Measure { qubit = 0; bit = 0 };
        Instruction.Reset 0;
        u Gate.H 0;
        Instruction.Measure { qubit = 0; bit = 1 };
        Instruction.Conditioned
          (Instruction.cond_bit 1 true, Instruction.app Gate.X 1);
      ]
  in
  let r = Lint.run ~passes:Lint.certifier_passes c in
  check_int "silent" 0 (List.length (of_pass "cond-after-clobber" r))

(* Each corpus circuit makes the CLI gate (and Lint.check) reject. *)
let test_check_raises () =
  let c =
    Circ.create ~roles:d1 ~num_bits:2
      [
        u Gate.H 0;
        Instruction.Measure { qubit = 0; bit = 0 };
        u Gate.X 0;
        Instruction.Measure { qubit = 0; bit = 1 };
      ]
  in
  check_bool "Lint.check raises Rejected" true
    (match Lint.check c with
    | (_ : Lint.report) -> false
    | exception Lint.Rejected r -> r.errors > 0)

(* ------------------------------------------------------------------ *)
(* Constructor normalization: Instruction.cond_all / cond_tests       *)

let test_cond_all_dedup () =
  check_bool "duplicates collapse" true
    (Instruction.cond_all [ 3; 3; 1 ] = Instruction.cond_all [ 1; 3 ])

let test_cond_tests_normalize () =
  let c = Instruction.cond_tests [ (2, false); (2, false); (0, true) ] in
  check_int "two entries" 2 (List.length c.Instruction.bits);
  check_bool "sorted" true (c.Instruction.bits = [ (0, true); (2, false) ])

let test_cond_tests_contradiction () =
  check_bool "contradiction rejected" true
    (match Instruction.cond_tests [ (3, true); (3, false) ] with
    | (_ : Instruction.cond) -> false
    | exception Invalid_argument _ -> true)

let test_cond_holds_contradiction () =
  (* documented semantics: a contradictory conjunction never holds *)
  let c = { Instruction.bits = [ (0, true); (0, false) ] } in
  check_bool "never holds" true
    (List.for_all (fun r -> not (Instruction.cond_holds c r)) [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Positive gate: benchmarks and their compilations lint clean        *)

let strictly_clean name (r : Lint.report) =
  Alcotest.(check (list string))
    (name ^ ": no errors or warnings")
    []
    (List.map
       (fun (d : Lint.Diagnostic.t) -> d.pass ^ ": " ^ d.message)
       (severities Lint.Diagnostic.Error r
       @ severities Lint.Diagnostic.Warning r))

let test_table1_transforms_lint_clean () =
  let check_one name traditional =
    let r = Dqc.Transform.transform traditional in
    strictly_clean name (Lint.run ~passes:(Lint.dqc_passes ()) r.circuit)
  in
  List.iter
    (fun s -> check_one ("BV_" ^ s) (Algorithms.Bv.circuit s))
    Algorithms.Bv.paper_benchmarks;
  List.iter
    (fun (o : Algorithms.Oracle.t) ->
      check_one o.name (Algorithms.Dj.circuit o))
    Algorithms.Dj.toffoli_free_oracles

let compile_lints_clean ?(slots = 1) scheme name =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name name) in
  let module O = Dqc.Pipeline.Options in
  let options =
    O.default |> O.with_scheme scheme |> O.with_slots slots
    |> O.with_check_equivalence false
  in
  let out = Dqc.Pipeline.compile ~options (Algorithms.Dj.circuit o) in
  match out.lint with
  | None -> Alcotest.fail (name ^ ": lint gate did not run")
  | Some r ->
      strictly_clean
        (Printf.sprintf "%s/%s/%d-slot" name
           (Dqc.Toffoli_scheme.to_string scheme)
           slots)
        r

let test_table2_dyn1_lint_clean () =
  List.iter
    (fun (o : Algorithms.Oracle.t) ->
      compile_lints_clean Dqc.Toffoli_scheme.Dynamic_1 o.name)
    Algorithms.Dj_toffoli.oracles

let test_table2_dyn2_lint_clean () =
  List.iter
    (fun (o : Algorithms.Oracle.t) ->
      compile_lints_clean Dqc.Toffoli_scheme.Dynamic_2 o.name)
    Algorithms.Dj_toffoli.oracles

let test_multi_slot_lint_clean () =
  compile_lints_clean ~slots:2 Dqc.Toffoli_scheme.Dynamic_1 "CARRY"

let test_lowered_variants_lint_clean () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
  let module O = Dqc.Pipeline.Options in
  let options =
    O.default |> O.with_peephole true |> O.with_native true
    |> O.with_check_equivalence false
  in
  let out = Dqc.Pipeline.compile ~options (Algorithms.Dj.circuit o) in
  match out.lint with
  | None -> Alcotest.fail "lint gate did not run"
  | Some r -> strictly_clean "AND peephole+native" r

(* The certifier-support passes are advisory, but the compiler's own
   output must not trip them: every compiled Table II benchmark obeys
   the measure-before-reset discipline and never conditions on a
   degenerate bit. *)
let test_certifier_passes_silent_on_compilations () =
  List.iter
    (fun scheme ->
      List.iter
        (fun (o : Algorithms.Oracle.t) ->
          let r =
            Dqc.Toffoli_scheme.transform scheme (Algorithms.Dj.circuit o)
          in
          strictly_clean
            (Printf.sprintf "%s/%s certifier passes" o.name
               (Dqc.Toffoli_scheme.to_string scheme))
            (Lint.run ~passes:Lint.certifier_passes r.circuit))
        Algorithms.Dj_toffoli.oracles)
    [ Dqc.Toffoli_scheme.Dynamic_1; Dqc.Toffoli_scheme.Dynamic_2 ]

let test_direct_mct_lint_clean () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
  let r =
    Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Direct_mct
      (Algorithms.Dj.circuit o)
  in
  strictly_clean "AND direct-mct" (Lint.run ~passes:(Lint.dqc_passes ()) r.circuit)

(* ------------------------------------------------------------------ *)
(* Report plumbing                                                    *)

let test_report_json () =
  let c =
    Circ.create ~roles:d1 ~num_bits:1
      [ u Gate.H 0; Instruction.Measure { qubit = 0; bit = 0 } ]
  in
  let r = Lint.run c in
  let json = Obs.Json.to_string (Lint.to_json ~name:"probe" r) in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "schema" true (contains "\"schema\":\"dqc.lint/1\"" json);
  check_bool "circuit name" true (contains "\"probe\"" json);
  check_bool "clean flag" true (contains "\"clean\":true" json)

(* SARIF export: serialize, re-parse with the mini JSON reader, and
   check the document structure against the report it came from *)
let test_sarif_roundtrip () =
  let c =
    Circ.create ~roles:d1 ~num_bits:2
      [
        u Gate.H 0;
        Instruction.Measure { qubit = 0; bit = 0 };
        u Gate.X 0;
        Instruction.Measure { qubit = 0; bit = 1 };
      ]
  in
  let r = Lint.run c in
  check_bool "corpus has diagnostics" true (r.diagnostics <> []);
  let doc =
    Obs.Json.parse
      (Obs.Json.to_string (Lint.to_sarif ~name:"probe.qasm" r))
  in
  let str path j =
    match Obs.Json.member path j with
    | Some (Obs.Json.String s) -> s
    | _ -> Alcotest.fail ("missing string field " ^ path)
  in
  let int path j =
    match Obs.Json.member path j with
    | Some (Obs.Json.Int n) -> n
    | _ -> Alcotest.fail ("missing int field " ^ path)
  in
  let get path j =
    match Obs.Json.member path j with
    | Some v -> v
    | None -> Alcotest.fail ("missing field " ^ path)
  in
  let list = function
    | Obs.Json.List l -> l
    | _ -> Alcotest.fail "expected a JSON array"
  in
  Alcotest.(check string) "version" "2.1.0" (str "version" doc);
  check_bool "$schema present" true
    (Obs.Json.member "$schema" doc <> None);
  let run =
    match list (get "runs" doc) with
    | [ run ] -> run
    | _ -> Alcotest.fail "exactly one run"
  in
  let driver = get "driver" (get "tool" run) in
  Alcotest.(check string) "driver name" "dqc-lint" (str "name" driver);
  let rules = list (get "rules" driver) in
  let results = list (get "results" run) in
  check_int "one result per diagnostic"
    (List.length r.diagnostics)
    (List.length results);
  (* diagnostics are sorted; results preserve that order *)
  List.iter2
    (fun (d : Lint.Diagnostic.t) result ->
      Alcotest.(check string) "ruleId" d.pass (str "ruleId" result);
      Alcotest.(check string) "level"
        (match d.severity with
        | Lint.Diagnostic.Error -> "error"
        | Lint.Diagnostic.Warning -> "warning"
        | Lint.Diagnostic.Hint -> "note")
        (str "level" result);
      (* ruleIndex points at the rule carrying this ruleId *)
      let rule = List.nth rules (int "ruleIndex" result) in
      Alcotest.(check string) "ruleIndex resolves" d.pass (str "id" rule);
      let location =
        match list (get "locations" result) with
        | [ l ] -> l
        | _ -> Alcotest.fail "exactly one location"
      in
      let physical = get "physicalLocation" location in
      Alcotest.(check string) "artifact uri" "probe.qasm"
        (str "uri" (get "artifactLocation" physical));
      check_int "startLine is the 1-based instruction index"
        (d.instr_index + 1)
        (int "startLine" (get "region" physical)))
    r.diagnostics results

let test_lint_counters () =
  let c = Circ.create ~roles:d1 ~num_bits:0 [ Instruction.Reset 0 ] in
  let collector, r = Obs.with_collector (fun () -> Lint.run c) in
  check_int "one hint" 1 r.hints;
  let metrics = Obs.Json.to_string (Obs.Metrics_json.to_json collector) in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "per-pass counter" true
    (contains "lint.pass.redundant-reset" metrics)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lint"
    [
      ( "transfer",
        [
          Alcotest.test_case "measure known zero" `Quick
            test_transfer_measure_known;
          Alcotest.test_case "measure superposed" `Quick
            test_transfer_measure_superposed;
          Alcotest.test_case "x x roundtrip" `Quick test_transfer_x_chain;
          Alcotest.test_case "conditioned join" `Quick
            test_transfer_conditioned_join;
          Alcotest.test_case "entangling cx stays diagonal" `Quick
            test_transfer_entangling_cx;
          Alcotest.test_case "qubit lattice joins" `Quick test_join_lattice;
        ] );
      ( "negative corpus",
        [
          Alcotest.test_case "use-after-measure" `Quick
            corpus_use_after_measure;
          Alcotest.test_case "cond-unmeasured-bit" `Quick
            corpus_cond_unmeasured_bit;
          Alcotest.test_case "contradictory-condition" `Quick
            corpus_contradictory_condition;
          Alcotest.test_case "contradicts known bit" `Quick
            corpus_contradicts_known_bit;
          Alcotest.test_case "measurement-clobbers-bit" `Quick
            corpus_measurement_clobbers_bit;
          Alcotest.test_case "redundant-reset" `Quick corpus_redundant_reset;
          Alcotest.test_case "dead-gate" `Quick corpus_dead_gate;
          Alcotest.test_case "dead-bit" `Quick corpus_dead_bit;
          Alcotest.test_case "ancilla-not-zero" `Quick
            corpus_ancilla_not_zero;
          Alcotest.test_case "ancilla unprovable hint" `Quick
            corpus_ancilla_unprovable_hint;
          Alcotest.test_case "dqc-live-data" `Quick corpus_dqc_live_data;
          Alcotest.test_case "dqc-answer-reset" `Quick
            corpus_dqc_answer_reset;
          Alcotest.test_case "cond-after-clobber" `Quick
            corpus_cond_after_clobber;
          Alcotest.test_case "cond-after-clobber negative" `Quick
            corpus_cond_after_clobber_negative;
          Alcotest.test_case "nonzero-global-phase-reset" `Quick
            corpus_nonzero_global_phase_reset;
          Alcotest.test_case "Lint.check raises" `Quick test_check_raises;
        ] );
      ( "constructors",
        [
          Alcotest.test_case "cond_all dedup" `Quick test_cond_all_dedup;
          Alcotest.test_case "cond_tests normalize" `Quick
            test_cond_tests_normalize;
          Alcotest.test_case "cond_tests contradiction" `Quick
            test_cond_tests_contradiction;
          Alcotest.test_case "cond_holds contradiction" `Quick
            test_cond_holds_contradiction;
        ] );
      ( "benchmarks lint clean",
        [
          Alcotest.test_case "table1 transforms" `Quick
            test_table1_transforms_lint_clean;
          Alcotest.test_case "table2 dynamic-1" `Quick
            test_table2_dyn1_lint_clean;
          Alcotest.test_case "table2 dynamic-2" `Quick
            test_table2_dyn2_lint_clean;
          Alcotest.test_case "multi-slot" `Quick test_multi_slot_lint_clean;
          Alcotest.test_case "peephole+native" `Quick
            test_lowered_variants_lint_clean;
          Alcotest.test_case "certifier passes silent" `Quick
            test_certifier_passes_silent_on_compilations;
          Alcotest.test_case "direct mct" `Quick test_direct_mct_lint_clean;
        ] );
      ( "report",
        [
          Alcotest.test_case "json schema" `Quick test_report_json;
          Alcotest.test_case "sarif roundtrip" `Quick test_sarif_roundtrip;
          Alcotest.test_case "telemetry counters" `Quick test_lint_counters;
        ] );
    ]
