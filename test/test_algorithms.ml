open Circuit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Boolean_fun                                                        *)

let test_bf_create_eval () =
  let f = Algorithms.Boolean_fun.create ~arity:2 ~table:0b0110 in
  check_bool "f(0)" false (Algorithms.Boolean_fun.eval f 0);
  check_bool "f(1)" true (Algorithms.Boolean_fun.eval f 1);
  check_bool "f(3)" false (Algorithms.Boolean_fun.eval f 3);
  check_int "arity" 2 (Algorithms.Boolean_fun.arity f)

let test_bf_of_fun () =
  let f = Algorithms.Boolean_fun.of_fun ~arity:3 (fun k -> k mod 2 = 1) in
  check_int "ones" 4 (Algorithms.Boolean_fun.ones f);
  check_bool "balanced" true (Algorithms.Boolean_fun.is_balanced f);
  check_bool "not constant" false (Algorithms.Boolean_fun.is_constant f)

let test_bf_constant () =
  let zero = Algorithms.Boolean_fun.create ~arity:2 ~table:0 in
  let one = Algorithms.Boolean_fun.create ~arity:2 ~table:0b1111 in
  check_bool "const0" true (Algorithms.Boolean_fun.is_constant zero);
  check_bool "const1" true (Algorithms.Boolean_fun.is_constant one);
  check_bool "const0 not balanced" false (Algorithms.Boolean_fun.is_balanced zero)

let test_bf_arity_bound () =
  check_bool "arity 21 rejected" true
    (try
       ignore (Algorithms.Boolean_fun.create ~arity:21 ~table:0);
       false
     with Invalid_argument _ -> true)

let test_bf_equal () =
  let a = Algorithms.Boolean_fun.create ~arity:2 ~table:0b0110 in
  let b = Algorithms.Boolean_fun.of_fun ~arity:2 (fun k ->
      Sim.Bits.get k 0 <> Sim.Bits.get k 1)
  in
  check_bool "xor equal" true (Algorithms.Boolean_fun.equal a b)

(* ------------------------------------------------------------------ *)
(* Oracle                                                             *)

let test_all_oracles_implement_truth () =
  List.iter
    (fun (o : Algorithms.Oracle.t) ->
      check_bool (o.name ^ " truthful") true (Algorithms.Oracle.implements_truth o))
    (Algorithms.Dj.toffoli_free_oracles @ Algorithms.Dj_toffoli.oracles)

let test_oracle_toffoli_count () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY") in
  check_int "carry has 3 toffolis" 3 (Algorithms.Oracle.toffoli_count o);
  let p = Option.get (Algorithms.Dj.oracle_by_name "DJ_XOR") in
  check_int "xor has none" 0 (Algorithms.Oracle.toffoli_count p)

let test_oracle_make_validates () =
  check_bool "arity mismatch" true
    (try
       ignore
         (Algorithms.Oracle.make ~name:"bad" ~arity:3
            ~truth:(Algorithms.Boolean_fun.create ~arity:2 ~table:0)
            []);
       false
     with Invalid_argument _ -> true);
  check_bool "qubit out of range" true
    (try
       ignore
         (Algorithms.Oracle.make ~name:"bad" ~arity:1
            ~truth:(Algorithms.Boolean_fun.create ~arity:1 ~table:0)
            [ Instruction.Unitary (Instruction.app Gate.X 5) ]);
       false
     with Invalid_argument _ -> true)

let test_bad_oracle_detected () =
  (* an oracle whose instructions do not match its claimed truth *)
  let o =
    Algorithms.Oracle.make ~name:"lying" ~arity:1
      ~truth:(Algorithms.Boolean_fun.create ~arity:1 ~table:0b11)
      []
  in
  check_bool "detected" false (Algorithms.Oracle.implements_truth o)

(* ------------------------------------------------------------------ *)
(* Bv                                                                 *)

let test_bv_shapes () =
  let c = Algorithms.Bv.circuit "110" in
  check_int "qubits" 4 (Circ.num_qubits c);
  check_int "sparse gate count" 8 (Metrics.gate_count c);
  let t = Algorithms.Bv.circuit ~variant:`Textbook "110" in
  check_int "textbook gate count" 10 (Metrics.gate_count t)

let test_bv_validation () =
  check_bool "empty" true
    (try
       ignore (Algorithms.Bv.circuit "");
       false
     with Invalid_argument _ -> true);
  check_bool "non-binary" true
    (try
       ignore (Algorithms.Bv.circuit "10a");
       false
     with Invalid_argument _ -> true)

let test_bv_expected_outcome () =
  check_int "s=101" 0b101 (Algorithms.Bv.expected_outcome "101")

let bv_data_distribution variant s =
  let c = Algorithms.Bv.circuit ~variant s in
  let n = String.length s in
  Sim.Exact.measured_distribution ~measures:(List.init n (fun q -> (q, q))) c

let test_bv_recovers_hidden_string () =
  List.iter
    (fun s ->
      let d = bv_data_distribution `Sparse s in
      check_float ("sparse " ^ s) 1.
        (Sim.Dist.prob d (Algorithms.Bv.expected_outcome s));
      let dt = bv_data_distribution `Textbook s in
      check_float ("textbook " ^ s) 1.
        (Sim.Dist.prob dt (Algorithms.Bv.expected_outcome s)))
    [ "1"; "101"; "0010"; "1111" ]

let prop_bv_random_strings =
  QCheck2.Test.make ~name:"BV dynamic recovers random hidden strings" ~count:40
    QCheck2.Gen.(string_size ~gen:(oneofl [ '0'; '1' ]) (int_range 1 5))
    (fun s ->
      let c = Algorithms.Bv.circuit s in
      let r = Dqc.Transform.transform c in
      let d = Sim.Exact.register_distribution r.circuit in
      abs_float (Sim.Dist.prob d (Algorithms.Bv.expected_outcome s) -. 1.) < 1e-9)

let test_paper_benchmarks_list () =
  check_int "20 strings" 20 (List.length Algorithms.Bv.paper_benchmarks)

(* ------------------------------------------------------------------ *)
(* Dj                                                                 *)

let test_dj_circuit_shape () =
  let o = Option.get (Algorithms.Dj.oracle_by_name "DJ_XOR") in
  let c = Algorithms.Dj.circuit o in
  check_int "qubits" 3 (Circ.num_qubits c);
  check_int "gates" 8 (Metrics.gate_count c)

let test_dj_constant_vs_balanced () =
  let zero_prob name =
    Algorithms.Dj.zero_outcome_probability
      (Option.get (Algorithms.Dj.oracle_by_name name))
  in
  check_float "const0 -> all zero" 1. (zero_prob "DJ_CONST_0");
  check_float "const1 -> all zero" 1. (zero_prob "DJ_CONST_1");
  check_float "xor balanced -> never zero" 0. (zero_prob "DJ_XOR");
  check_float "pass balanced -> never zero" 0. (zero_prob "DJ_PASS_1")

let test_dj_expected_outcome () =
  let xor = Option.get (Algorithms.Dj.oracle_by_name "DJ_XOR") in
  (* balanced on both inputs: DJ returns |11> deterministically *)
  check_int "xor peak" 0b11 (Algorithms.Dj.expected_outcome xor)

let test_dj_oracle_catalog () =
  check_int "eight oracles" 8 (List.length Algorithms.Dj.toffoli_free_oracles);
  check_bool "lookup" true (Algorithms.Dj.oracle_by_name "DJ_XNOR" <> None);
  check_bool "missing" true (Algorithms.Dj.oracle_by_name "NOPE" = None)

let test_dj_classify () =
  let get n = Option.get (Algorithms.Dj.oracle_by_name n) in
  List.iter
    (fun dynamic ->
      check_bool "const0" true
        (Algorithms.Dj.classify ~dynamic (get "DJ_CONST_0") = `Constant);
      check_bool "const1" true
        (Algorithms.Dj.classify ~dynamic (get "DJ_CONST_1") = `Constant);
      check_bool "xor" true
        (Algorithms.Dj.classify ~dynamic (get "DJ_XOR") = `Balanced);
      check_bool "pass" true
        (Algorithms.Dj.classify ~dynamic (get "DJ_PASS_1") = `Balanced))
    [ true; false ]

let test_bv_recover_api () =
  List.iter
    (fun s ->
      Alcotest.(check string) ("dynamic " ^ s) s (Algorithms.Bv.recover s);
      Alcotest.(check string) ("traditional " ^ s) s
        (Algorithms.Bv.recover ~dynamic:false s))
    [ "1"; "1011"; "001101" ]

(* ------------------------------------------------------------------ *)
(* Dj_toffoli                                                         *)

let test_dj_toffoli_catalog () =
  check_int "nine oracles" 9 (List.length Algorithms.Dj_toffoli.oracles);
  Alcotest.(check (list string)) "names"
    [ "AND"; "NAND"; "OR"; "NOR"; "IMPLY_1"; "IMPLY_2"; "INHIB_1"; "INHIB_2"; "CARRY" ]
    Algorithms.Dj_toffoli.names

let test_carry_is_majority () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY") in
  let f (a, b, c) =
    Algorithms.Boolean_fun.eval o.truth (a + (2 * b) + (4 * c))
  in
  check_bool "011" true (f (0, 1, 1));
  check_bool "101" true (f (1, 0, 1));
  check_bool "100" false (f (1, 0, 0));
  check_bool "111" true (f (1, 1, 1));
  check_bool "000" false (f (0, 0, 0))

(* ------------------------------------------------------------------ *)
(* Mct_bench / Oracle.synthesize                                      *)

let test_mct_suite_truthful () =
  List.iter
    (fun (o : Algorithms.Oracle.t) ->
      check_bool (o.name ^ " truthful") true
        (Algorithms.Oracle.implements_truth o))
    Algorithms.Mct_bench.suite

let test_mct_generators () =
  let and3 = Algorithms.Mct_bench.and_n 3 in
  check_int "and_3 single gate" 1 (List.length and3.instrs);
  check_bool "and_3 truth" true
    (Algorithms.Boolean_fun.eval and3.truth 7
    && not (Algorithms.Boolean_fun.eval and3.truth 6));
  let nand2 = Algorithms.Mct_bench.nand_n 2 in
  check_bool "nand_2 truthful" true (Algorithms.Oracle.implements_truth nand2);
  let or3 = Algorithms.Mct_bench.or_n 3 in
  check_bool "or_3 truthful" true (Algorithms.Oracle.implements_truth or3);
  check_int "or_3 monomials" 7 (List.length or3.instrs);
  check_bool "majority even arity rejected" true
    (try
       ignore (Algorithms.Mct_bench.majority_n 4);
       false
     with Invalid_argument _ -> true)

let test_anf () =
  let xor = Algorithms.Boolean_fun.create ~arity:2 ~table:0b0110 in
  Alcotest.(check (list (list int))) "xor anf" [ [ 0 ]; [ 1 ] ]
    (Algorithms.Oracle.anf_monomials xor);
  let and2 = Algorithms.Boolean_fun.create ~arity:2 ~table:0b1000 in
  Alcotest.(check (list (list int))) "and anf" [ [ 0; 1 ] ]
    (Algorithms.Oracle.anf_monomials and2);
  let const1 = Algorithms.Boolean_fun.create ~arity:2 ~table:0b1111 in
  Alcotest.(check (list (list int))) "const1 anf" [ [] ]
    (Algorithms.Oracle.anf_monomials const1)

let prop_synthesize_truthful =
  QCheck2.Test.make ~name:"synthesized oracles implement their table"
    ~count:80
    QCheck2.Gen.(pair (int_range 1 4) (int_bound 0xFFFF))
    (fun (arity, table) ->
      let truth = Algorithms.Boolean_fun.create ~arity ~table in
      Algorithms.Oracle.implements_truth
        (Algorithms.Oracle.synthesize ~name:"prop" truth))

(* ------------------------------------------------------------------ *)
(* Gf2 / Simon                                                        *)

let test_gf2_basics () =
  check_bool "dot" true (Gf2.dot 0b110 0b010);
  check_bool "dot even" false (Gf2.dot 0b110 0b110);
  check_int "rank full" 3 (Gf2.rank ~width:3 [ 0b001; 0b010; 0b100 ]);
  check_int "rank dependent" 2
    (Gf2.rank ~width:3 [ 0b011; 0b101; 0b110 ]);
  check_int "independent count" 2
    (List.length (Gf2.independent ~width:3 [ 0b011; 0b101; 0b110 ]))

let test_gf2_nullspace () =
  (* constraints orthogonal to s = 101: nullspace from two independent
     ones must be {101} *)
  let ns = Gf2.nullspace ~width:3 [ 0b010; 0b111 ] in
  Alcotest.(check (list int)) "unique solution" [ 0b101 ] ns;
  (* empty constraint set: whole space *)
  check_int "full nullspace" 3
    (List.length (Gf2.nullspace ~width:3 []));
  (* every nullspace vector is orthogonal to every constraint *)
  let constraints = [ 0b0110; 0b1010; 0b0001 ] in
  List.iter
    (fun v ->
      List.iter
        (fun c -> check_bool "orthogonal" false (Gf2.dot v c))
        constraints)
    (Gf2.nullspace ~width:4 constraints)

let test_simon_oracle_is_periodic () =
  (* f(x) = f(x XOR s) and 2-to-1, for a couple of secrets *)
  List.iter
    (fun s ->
      let n = String.length s in
      let secret = Sim.Bits.of_string s in
      let f x =
        (* evaluate the oracle on basis input x *)
        let st = Sim.Statevector.create (2 * n) ~num_bits:0 in
        for q = 0 to n - 1 do
          if Sim.Bits.get x q then Sim.Statevector.apply_gate st Gate.X q
        done;
        List.iter
          (fun (i : Instruction.t) ->
            match i with
            | Unitary a -> Sim.Statevector.apply_app st a
            | Conditioned _ | Measure _ | Reset _ | Barrier _ -> assert false)
          (Algorithms.Simon.oracle s);
        let probs = Sim.Statevector.probabilities st in
        let out = ref (-1) in
        Array.iteri (fun k p -> if p > 0.5 then out := k) probs;
        !out lsr n
      in
      for x = 0 to (1 lsl n) - 1 do
        check_int
          (Printf.sprintf "period %s at %d" s x)
          (f x)
          (f (x lxor secret))
      done)
    [ "11"; "101" ]

let test_simon_constraints_orthogonal () =
  let s = "1101" in
  let secret = Sim.Bits.of_string s in
  let ys = Algorithms.Simon.sample_constraints ~runs:40 ~dynamic:true s in
  List.iter
    (fun y -> check_bool "y.s = 0" false (Gf2.dot y secret))
    ys

let test_simon_recovers () =
  List.iter
    (fun s ->
      let expected = Some (Sim.Bits.of_string s) in
      check_bool ("traditional " ^ s) true
        (Algorithms.Simon.recover_secret ~dynamic:false s = expected);
      check_bool ("dynamic " ^ s) true
        (Algorithms.Simon.recover_secret ~dynamic:true s = expected))
    [ "11"; "101"; "1101" ]

let test_simon_dynamic_certified () =
  (* multiple answer qubits, still certified exact by sound mode *)
  let c = Algorithms.Simon.circuit "1011" in
  let r = Dqc.Transform.transform ~mode:`Sound c in
  check_int "n+1 qubits" 5 (Circ.num_qubits r.circuit);
  check_bool "equivalent" true (Dqc.Equivalence.equivalent c r)

let prop_simon_random_secrets =
  QCheck2.Test.make ~name:"Simon recovers random secrets dynamically" ~count:15
    QCheck2.Gen.(
      map
        (fun (n, v) ->
          let v = if v land ((1 lsl n) - 1) = 0 then 1 else v in
          Sim.Bits.to_string ~width:n v)
        (pair (int_range 2 5) (int_bound 31)))
    (fun s ->
      Algorithms.Simon.recover_secret ~dynamic:true s
      = Some (Sim.Bits.of_string s))

let test_simon_validation () =
  List.iter
    (fun s ->
      check_bool ("reject " ^ s) true
        (try
           ignore (Algorithms.Simon.circuit s);
           false
         with Invalid_argument _ -> true))
    [ ""; "000"; "1x0" ]

(* ------------------------------------------------------------------ *)
(* Reversible / Arithmetic                                            *)

(* run a gadget on a basis input and return the resulting basis state *)
let run_gadget ~n ~input instrs =
  let st = Sim.Statevector.create n ~num_bits:0 in
  for q = 0 to n - 1 do
    if Sim.Bits.get input q then Sim.Statevector.apply_gate st Gate.X q
  done;
  List.iter
    (fun (i : Instruction.t) ->
      match i with
      | Unitary a -> Sim.Statevector.apply_app st a
      | Conditioned _ | Measure _ | Reset _ | Barrier _ -> assert false)
    instrs;
  let probs = Sim.Statevector.probabilities st in
  let out = ref (-1) in
  Array.iteri (fun k p -> if p > 0.5 then out := k) probs;
  !out

let test_swap_fredkin () =
  check_int "swap" 0b01 (run_gadget ~n:2 ~input:0b10 (Algorithms.Reversible.swap 0 1));
  (* control off: no swap *)
  check_int "fredkin off" 0b010
    (run_gadget ~n:3 ~input:0b010
       (Algorithms.Reversible.fredkin ~control:0 ~t1:1 ~t2:2));
  (* control on: swap *)
  check_int "fredkin on" 0b101
    (run_gadget ~n:3 ~input:0b011
       (Algorithms.Reversible.fredkin ~control:0 ~t1:1 ~t2:2))

let test_peres () =
  (* a'=a, b'=a^b, c'=c^(ab) over all 8 inputs *)
  for x = 0 to 7 do
    let a = Sim.Bits.get x 0 and b = Sim.Bits.get x 1 and c = Sim.Bits.get x 2 in
    let expected =
      Sim.Bits.set (Sim.Bits.set x 1 (a <> b)) 2 (c <> (a && b))
    in
    check_int
      (Printf.sprintf "peres %d" x)
      expected
      (run_gadget ~n:3 ~input:x (Algorithms.Reversible.peres ~a:0 ~b:1 ~c:2))
  done

let test_adders () =
  (* half adder over the 4 inputs with clean carry *)
  for x = 0 to 3 do
    let a = Sim.Bits.get x 0 and b = Sim.Bits.get x 1 in
    let expected =
      Sim.Bits.set (Sim.Bits.set x 1 (a <> b)) 2 (a && b)
    in
    check_int
      (Printf.sprintf "half %d" x)
      expected
      (run_gadget ~n:3 ~input:x
         (Algorithms.Reversible.half_adder ~a:0 ~b:1 ~carry:2))
  done;
  (* full adder: sum in cin, carry-out correct, over all clean-carry inputs *)
  for x = 0 to 7 do
    let a = Sim.Bits.get x 0 and b = Sim.Bits.get x 1 and cin = Sim.Bits.get x 2 in
    let ones = List.length (List.filter Fun.id [ a; b; cin ]) in
    let out =
      run_gadget ~n:4 ~input:x
        (Algorithms.Reversible.full_adder ~a:0 ~b:1 ~cin:2 ~carry:3)
    in
    check_bool
      (Printf.sprintf "full sum %d" x)
      (ones mod 2 = 1)
      (Sim.Bits.get out 2);
    check_bool
      (Printf.sprintf "full carry %d" x)
      (ones >= 2)
      (Sim.Bits.get out 3)
  done

let test_cuccaro_exhaustive () =
  List.iter
    (fun n ->
      for x = 0 to (1 lsl n) - 1 do
        for y = 0 to (1 lsl n) - 1 do
          let sum, carry = Algorithms.Arithmetic.add_values ~n x y in
          check_int (Printf.sprintf "%d+%d mod" x y) ((x + y) mod (1 lsl n)) sum;
          check_bool (Printf.sprintf "%d+%d carry" x y) (x + y >= 1 lsl n) carry
        done
      done)
    [ 1; 2; 3 ]

let prop_cuccaro_4bit =
  QCheck2.Test.make ~name:"4-bit cuccaro adder" ~count:40
    QCheck2.Gen.(pair (int_bound 15) (int_bound 15))
    (fun (x, y) ->
      let sum, carry = Algorithms.Arithmetic.add_values ~n:4 x y in
      sum = (x + y) mod 16 && carry = (x + y >= 16))

let test_adder_shape () =
  let c, layout = Algorithms.Arithmetic.adder 3 in
  check_int "qubits" 8 (Circ.num_qubits c);
  check_int "carry out role answer" 7 layout.Algorithms.Arithmetic.carry_out;
  check_bool "answer role" true (Circ.role c 7 = Circ.Answer);
  check_bool "n bounds" true
    (try
       ignore (Algorithms.Arithmetic.adder 0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Qpe                                                                *)

let test_qpe_exact_phase () =
  List.iter
    (fun (bits, num) ->
      let phase = float_of_int num /. float_of_int (1 lsl bits) in
      let dt = Algorithms.Qpe.distribution `Traditional ~bits ~phase in
      let di = Algorithms.Qpe.distribution `Iterative ~bits ~phase in
      check_float "traditional deterministic" 1. (Sim.Dist.prob dt num);
      check_float "iterative deterministic" 1. (Sim.Dist.prob di num))
    [ (2, 3); (3, 5); (4, 9); (5, 21) ]

let test_qpe_forms_agree () =
  (* the iterative form defers nothing: for ANY phase the exact
     distributions coincide (deferred measurement principle) *)
  List.iter
    (fun phase ->
      let dt = Algorithms.Qpe.distribution `Traditional ~bits:4 ~phase in
      let di = Algorithms.Qpe.distribution `Iterative ~bits:4 ~phase in
      check_float ("tv at phase " ^ string_of_float phase) 0.
        (Sim.Dist.tv_distance dt di))
    [ 0.1; 0.3; 0.55; 0.9; 0.137 ]

let test_qpe_peak_quality () =
  (* the best t-bit estimate carries the textbook >= 4/pi^2 of the mass *)
  let phase = 0.3 in
  let d = Algorithms.Qpe.distribution `Iterative ~bits:4 ~phase in
  let best = Algorithms.Qpe.best_estimate ~bits:4 ~phase in
  check_bool "peak mass" true (Sim.Dist.prob d best > 0.4);
  check_int "best estimate of 0.3 at 4 bits" 5 best

let test_qpe_shapes () =
  let c = Algorithms.Qpe.iterative ~bits:3 ~phase:0.25 in
  check_int "two qubits" 2 (Circ.num_qubits c);
  check_int "three digits" 3 (Circ.num_bits c);
  let s = Metrics.stats c in
  check_int "three measurements" 3 s.Metrics.measure;
  check_int "corrections are conditioned" 3 s.Metrics.conditioned;
  check_bool "bits range" true
    (try
       ignore (Algorithms.Qpe.traditional ~bits:0 ~phase:0.5);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Teleport                                                           *)

let test_teleport_fidelity () =
  List.iter
    (fun prep ->
      check_float
        ("fidelity " ^ Gate.name prep)
        1.
        (Algorithms.Teleport.fidelity prep))
    Gate.[ H; X; T; Ry 0.7; Rx (-1.2); V ]

let test_teleport_structure () =
  let c = Algorithms.Teleport.circuit Gate.H in
  let s = Metrics.stats c in
  check_int "two measurements" 2 s.Metrics.measure;
  check_int "two corrections" 2 s.Metrics.conditioned

(* ------------------------------------------------------------------ *)
(* Grover                                                             *)

let test_grover_iterations () =
  check_int "n=2" 1 (Algorithms.Grover.optimal_iterations 2);
  check_int "n=3" 2 (Algorithms.Grover.optimal_iterations 3);
  check_int "n=4" 3 (Algorithms.Grover.optimal_iterations 4)

let test_grover_success () =
  check_float "n=2 exact" 1. (Algorithms.Grover.success_probability ~n:2 ~marked:3);
  check_bool "n=3 high" true
    (Algorithms.Grover.success_probability ~n:3 ~marked:5 > 0.9);
  check_bool "n=4 high" true
    (Algorithms.Grover.success_probability ~n:4 ~marked:11 > 0.9)

let test_grover_validation () =
  check_bool "marked range" true
    (try
       ignore (Algorithms.Grover.circuit ~n:2 ~marked:7);
       false
     with Invalid_argument _ -> true);
  check_bool "n range" true
    (try
       ignore (Algorithms.Grover.circuit ~n:1 ~marked:0);
       false
     with Invalid_argument _ -> true)

let test_grover_contains_mct () =
  let c = Algorithms.Grover.circuit ~n:4 ~marked:3 in
  let has_mct =
    List.exists
      (fun (i : Instruction.t) ->
        match i with
        | Unitary { controls; _ } -> List.length controls >= 3
        | Conditioned _ | Measure _ | Reset _ | Barrier _ -> false)
      (Circ.instructions c)
  in
  check_bool "has multi-control" true has_mct;
  (* reduce and re-check success probability is preserved *)
  let reduced = Decompose.Pass.reduce_mct c in
  let d = Sim.Exact.measure_all_distribution reduced in
  let marginal =
    Sim.Dist.marginal ~bits:[ 0; 1; 2; 3 ] d
  in
  check_bool "reduced still succeeds" true (Sim.Dist.prob marginal 3 > 0.9)

let () =
  Alcotest.run "algorithms"
    [
      ( "boolean_fun",
        [
          Alcotest.test_case "create/eval" `Quick test_bf_create_eval;
          Alcotest.test_case "of_fun" `Quick test_bf_of_fun;
          Alcotest.test_case "constant" `Quick test_bf_constant;
          Alcotest.test_case "arity bound" `Quick test_bf_arity_bound;
          Alcotest.test_case "equal" `Quick test_bf_equal;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "all truthful" `Quick
            test_all_oracles_implement_truth;
          Alcotest.test_case "toffoli count" `Quick test_oracle_toffoli_count;
          Alcotest.test_case "make validates" `Quick test_oracle_make_validates;
          Alcotest.test_case "bad oracle detected" `Quick test_bad_oracle_detected;
        ] );
      ( "bv",
        [
          Alcotest.test_case "shapes" `Quick test_bv_shapes;
          Alcotest.test_case "validation" `Quick test_bv_validation;
          Alcotest.test_case "expected outcome" `Quick test_bv_expected_outcome;
          Alcotest.test_case "recovers hidden string" `Quick
            test_bv_recovers_hidden_string;
          Alcotest.test_case "paper list" `Quick test_paper_benchmarks_list;
          QCheck_alcotest.to_alcotest prop_bv_random_strings;
        ] );
      ( "dj",
        [
          Alcotest.test_case "shape" `Quick test_dj_circuit_shape;
          Alcotest.test_case "constant vs balanced" `Quick
            test_dj_constant_vs_balanced;
          Alcotest.test_case "expected outcome" `Quick test_dj_expected_outcome;
          Alcotest.test_case "catalog" `Quick test_dj_oracle_catalog;
          Alcotest.test_case "classify" `Quick test_dj_classify;
          Alcotest.test_case "bv recover api" `Quick test_bv_recover_api;
        ] );
      ( "dj_toffoli",
        [
          Alcotest.test_case "catalog" `Quick test_dj_toffoli_catalog;
          Alcotest.test_case "carry majority" `Quick test_carry_is_majority;
        ] );
      ( "mct_bench",
        [
          Alcotest.test_case "suite truthful" `Quick test_mct_suite_truthful;
          Alcotest.test_case "generators" `Quick test_mct_generators;
          Alcotest.test_case "anf" `Quick test_anf;
          QCheck_alcotest.to_alcotest prop_synthesize_truthful;
        ] );
      ( "gf2/simon",
        [
          Alcotest.test_case "gf2 basics" `Quick test_gf2_basics;
          Alcotest.test_case "gf2 nullspace" `Quick test_gf2_nullspace;
          Alcotest.test_case "oracle periodic" `Quick test_simon_oracle_is_periodic;
          Alcotest.test_case "constraints orthogonal" `Quick
            test_simon_constraints_orthogonal;
          Alcotest.test_case "recovers secrets" `Slow test_simon_recovers;
          Alcotest.test_case "dynamic certified" `Quick
            test_simon_dynamic_certified;
          Alcotest.test_case "validation" `Quick test_simon_validation;
          QCheck_alcotest.to_alcotest prop_simon_random_secrets;
        ] );
      ( "reversible/arithmetic",
        [
          Alcotest.test_case "swap/fredkin" `Quick test_swap_fredkin;
          Alcotest.test_case "peres" `Quick test_peres;
          Alcotest.test_case "adders" `Quick test_adders;
          Alcotest.test_case "cuccaro exhaustive" `Slow test_cuccaro_exhaustive;
          Alcotest.test_case "adder shape" `Quick test_adder_shape;
          QCheck_alcotest.to_alcotest prop_cuccaro_4bit;
        ] );
      ( "qpe",
        [
          QCheck_alcotest.to_alcotest
            (QCheck2.Test.make ~name:"qpe forms agree on random phases"
               ~count:25
               QCheck2.Gen.(float_bound_inclusive 1.)
               (fun phase ->
                 Sim.Dist.tv_distance
                   (Algorithms.Qpe.distribution `Traditional ~bits:3 ~phase)
                   (Algorithms.Qpe.distribution `Iterative ~bits:3 ~phase)
                 < 1e-9));
          Alcotest.test_case "exact phases" `Quick test_qpe_exact_phase;
          Alcotest.test_case "forms agree" `Quick test_qpe_forms_agree;
          Alcotest.test_case "peak quality" `Quick test_qpe_peak_quality;
          Alcotest.test_case "shapes" `Quick test_qpe_shapes;
        ] );
      ( "teleport",
        [
          Alcotest.test_case "fidelity" `Quick test_teleport_fidelity;
          Alcotest.test_case "structure" `Quick test_teleport_structure;
        ] );
      ( "grover",
        [
          Alcotest.test_case "iterations" `Quick test_grover_iterations;
          Alcotest.test_case "success" `Slow test_grover_success;
          Alcotest.test_case "validation" `Quick test_grover_validation;
          Alcotest.test_case "mct reduction" `Slow test_grover_contains_mct;
        ] );
    ]
