open Circuit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_strings = Alcotest.(check (list string))

let bv s =
  let n = String.length s in
  let roles =
    Array.init (n + 1) (fun q -> if q < n then Circ.Data else Circ.Answer)
  in
  let b = Circ.Builder.make ~roles ~num_bits:0 () in
  String.iteri
    (fun i c ->
      if c = '1' then
        Circ.Builder.add b
          (Instruction.Unitary (Instruction.app ~controls:[ i ] Gate.X n)))
    s;
  Circ.Builder.build b

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let test_registry_contents () =
  let passes = Dqc.Pipeline.registered_passes () in
  let name (p : Dqc.Pass.t) = p.Dqc.Pass.name in
  List.iter
    (fun n ->
      check_bool (n ^ " registered") true
        (List.exists (fun p -> name p = n) passes))
    [
      "prepare"; "transform"; "certify"; "equivalence"; "reuse"; "analyze";
      "analyze.resources"; "prune_resets"; "reuse_certify"; "expand_cv";
      "optimize.fold"; "optimize.dce"; "optimize.affine"; "peephole";
      "lower_native"; "lint";
    ];
  let kind_of n =
    (List.find (fun p -> name p = n) passes).Dqc.Pass.kind
  in
  check_bool "transform is a transform" true
    (kind_of "transform" = Dqc.Pass.Transform);
  check_bool "certify is an analysis" true
    (kind_of "certify" = Dqc.Pass.Analysis);
  check_bool "lint is a gate" true (kind_of "lint" = Dqc.Pass.Gate);
  check_bool "reuse_certify is a gate" true
    (kind_of "reuse_certify" = Dqc.Pass.Gate);
  List.iter
    (fun n ->
      check_bool (n ^ " is a transform") true
        (kind_of n = Dqc.Pass.Transform))
    [ "optimize.fold"; "optimize.dce"; "optimize.affine" ]

let test_schedule_names () =
  let names = Dqc.Pipeline.Options.(schedule_names default) in
  check_strings "default DQC schedule"
    [ "prepare"; "transform"; "certify"; "equivalence"; "expand_cv"; "lint" ]
    names;
  let reuse_names =
    Dqc.Pipeline.Options.(schedule_names (default |> with_reuse true))
  in
  check_strings "reuse schedule"
    [
      "prepare"; "analyze.resources"; "reuse"; "analyze"; "prune_resets";
      "reuse_certify"; "expand_cv"; "analyze"; "lint";
    ]
    reuse_names;
  (* the optimizer slots in after expand_cv, ahead of peephole *)
  let optimize_names =
    Dqc.Pipeline.Options.(
      schedule_names (default |> with_optimize true |> with_peephole true))
  in
  check_strings "optimize schedule"
    [
      "prepare"; "transform"; "certify"; "equivalence"; "expand_cv";
      "optimize.fold"; "optimize.dce"; "optimize.affine"; "peephole"; "lint";
    ]
    optimize_names

(* ------------------------------------------------------------------ *)
(* Option validation                                                   *)

let test_invalid_options () =
  (try
     ignore Dqc.Pipeline.Options.(default |> with_slots 0);
     Alcotest.fail "with_slots 0 accepted"
   with Dqc.Pipeline.Invalid_options _ -> ());
  (try
     ignore Dqc.Pipeline.Options.(default |> with_slots (-3));
     Alcotest.fail "negative slots accepted"
   with Dqc.Pipeline.Invalid_options _ -> ());
  try
    ignore Dqc.Pipeline.Options.(default |> with_passes [ "no_such_pass" ]);
    Alcotest.fail "unknown pass accepted"
  with Dqc.Pipeline.Invalid_options msg ->
    check_bool "message names the pass" true
      (String.length msg > 0
      && String.fold_left (fun acc _ -> acc) true (String.sub msg 0 1))

(* ------------------------------------------------------------------ *)
(* Determinism and telemetry                                           *)

let event_names (out : Dqc.Pipeline.output) =
  List.map
    (fun (e : Dqc.Pass_manager.event) -> e.Dqc.Pass_manager.pass)
    out.Dqc.Pipeline.events

let test_pass_ordering_deterministic () =
  let run () = Dqc.Pipeline.compile (bv "1011") in
  let a = run () and b = run () in
  check_strings "same pass sequence" (event_names a) (event_names b);
  check_strings "events match the schedule"
    Dqc.Pipeline.Options.(schedule_names default)
    (event_names a);
  check_bool "same circuit" true
    (Circ.equal a.Dqc.Pipeline.circuit b.Dqc.Pipeline.circuit)

let test_per_pass_counters () =
  let c, out =
    Obs.with_collector (fun () -> Dqc.Pipeline.compile (bv "101"))
  in
  List.iter
    (fun name ->
      check_int
        ("pipeline.pass." ^ name ^ ".runs")
        1
        (Obs.Collector.counter c ("pipeline.pass." ^ name ^ ".runs")))
    (event_names out);
  check_int "no failures" 0 (Obs.Collector.counter c "pipeline.pass.failed")

exception Boom

let test_short_circuit_on_failure () =
  Dqc.Pass.register
    (Dqc.Pass.make ~name:"test_boom" ~kind:Dqc.Pass.Gate
       ~doc:"always fails (test only)" (fun _ -> raise Boom));
  let options =
    Dqc.Pipeline.Options.(
      default |> with_passes [ "prepare"; "test_boom"; "transform" ])
  in
  let c, raised =
    Obs.with_collector (fun () ->
        try
          ignore (Dqc.Pipeline.compile ~options (bv "11"));
          false
        with Boom -> true)
  in
  check_bool "failure propagates" true raised;
  check_int "failure counted" 1 (Obs.Collector.counter c "pipeline.pass.failed");
  check_int "boom failure counted" 1
    (Obs.Collector.counter c "pipeline.pass.test_boom.failed");
  let spans =
    List.map (fun (s : Obs.Collector.span) -> s.Obs.Collector.name)
      (Obs.Collector.spans c)
  in
  check_bool "prepare ran" true (List.mem "pipeline.pass.prepare" spans);
  check_bool "transform never ran" false
    (List.mem "pipeline.pass.transform" spans)

(* ------------------------------------------------------------------ *)
(* Reuse corpus: qubit reduction, certified by the path-sum checker    *)

let reuse_options ?(scheme = Dqc.Toffoli_scheme.Traditional) () =
  let s = scheme in
  Dqc.Pipeline.Options.(default |> with_scheme s |> with_reuse true)

let check_reuse name options circuit ~expect_before ~expect_after =
  let out = Dqc.Pipeline.compile ~options circuit in
  (match out.Dqc.Pipeline.reuse with
  | None -> Alcotest.fail (name ^ ": no reuse report")
  | Some r ->
      check_int (name ^ " qubits before") expect_before
        r.Dqc.Reuse.qubits_before;
      check_int (name ^ " qubits after") expect_after r.Dqc.Reuse.qubits_after;
      check_bool (name ^ " saved > 0") true (Dqc.Reuse.saved r > 0));
  check_int (name ^ " output width") expect_after out.Dqc.Pipeline.qubits;
  check_bool (name ^ " certified, not sampled") true
    (out.Dqc.Pipeline.certified && out.Dqc.Pipeline.tv = None);
  out

let test_reuse_simon () =
  ignore
    (check_reuse "SIMON_110" (reuse_options ())
       (Algorithms.Simon.measured_circuit "110")
       ~expect_before:6 ~expect_after:4)

let test_reuse_qpe () =
  ignore
    (check_reuse "QPE_3"
       (reuse_options ())
       (Algorithms.Qpe.kitaev ~bits:3 ~phase:(3. /. 8.))
       ~expect_before:4 ~expect_after:2)

let test_reuse_grover () =
  let options =
    reuse_options ~scheme:(Dqc.Toffoli_scheme.Dynamic_2_shared `Fresh) ()
  in
  let out =
    Dqc.Pipeline.compile ~options (Algorithms.Grover.measured ~n:3 ~marked:5)
  in
  (match out.Dqc.Pipeline.reuse with
  | None -> Alcotest.fail "GROVER_3: no reuse report"
  | Some r ->
      check_bool "GROVER_3 saved > 0" true (Dqc.Reuse.saved r > 0);
      check_bool "GROVER_3 narrower" true
        (r.Dqc.Reuse.qubits_after < r.Dqc.Reuse.qubits_before));
  check_bool "GROVER_3 certified, not sampled" true
    (out.Dqc.Pipeline.certified && out.Dqc.Pipeline.tv = None)

let test_reuse_noop_when_all_live () =
  (* both qubits activate in the first instruction and stay live to the
     end: nothing ever retires, so the pass must return the input
     untouched (physically equal) and report zero savings *)
  let roles = [| Circ.Data; Circ.Data |] in
  let b = Circ.Builder.make ~roles ~num_bits:0 () in
  Circ.Builder.add b
    (Instruction.Unitary (Instruction.app ~controls:[ 0 ] Gate.X 1));
  Circ.Builder.h b 0;
  Circ.Builder.h b 1;
  let c = Circ.Builder.build b in
  let rewired, report = Dqc.Reuse.rewire c in
  check_bool "same value" true (rewired == c);
  check_int "no savings" 0 (Dqc.Reuse.saved report);
  check_int "no resets" 0 report.Dqc.Reuse.resets_inserted

let test_reuse_chains_bv_data () =
  (* the data qubits of a measured BV chain onto one wire — the paper's
     2n -> 2 reduction recovered by the general pass *)
  let n = 3 in
  let c = bv "111" in
  let measured =
    Circ.create ~roles:(Circ.roles c) ~num_bits:n
      (Circ.instructions c
      @ List.init n (fun q -> Instruction.Measure { qubit = q; bit = q }))
  in
  let rewired, report = Dqc.Reuse.rewire measured in
  check_int "2 wires" 2 (Circ.num_qubits rewired);
  check_int "saved" 2 (Dqc.Reuse.saved report)

(* ------------------------------------------------------------------ *)
(* Reset pruning                                                       *)

let test_prune_provably_zero_reset () =
  (* q0 runs X;X (provably back to |0>) and retires; q1 re-hosts on the
     freed wire.  The inserted reset is then provably redundant and the
     analysis-guided prune drops it. *)
  let roles = [| Circ.Data; Circ.Data |] in
  let b = Circ.Builder.make ~roles ~num_bits:2 () in
  Circ.Builder.x b 0;
  Circ.Builder.x b 0;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.h b 1;
  Circ.Builder.measure b ~qubit:1 ~bit:1;
  let c = Circ.Builder.build b in
  let rewired, report = Dqc.Reuse.rewire c in
  check_int "one wire" 1 (Circ.num_qubits rewired);
  check_int "one reset inserted" 1 report.Dqc.Reuse.resets_inserted;
  let trace = Lint.Trace.run rewired in
  let pruned_circuit, pruned = Dqc.Reuse.prune_resets trace in
  check_int "reset pruned" 1 pruned;
  check_bool "no reset left" true
    (List.for_all
       (function
         | Instruction.Reset _ -> false
         | Instruction.Unitary _ | Instruction.Measure _
         | Instruction.Conditioned _ | Instruction.Barrier _ ->
             true)
       (Circ.instructions pruned_circuit));
  (* the whole flow agrees: compile reports the prune and certifies *)
  let out = Dqc.Pipeline.compile ~options:(reuse_options ()) c in
  (match out.Dqc.Pipeline.reuse with
  | None -> Alcotest.fail "no reuse report"
  | Some r -> check_int "pipeline pruned it" 1 r.Dqc.Reuse.resets_pruned);
  check_bool "certified" true out.Dqc.Pipeline.certified

(* ------------------------------------------------------------------ *)
(* QASM round-trip of reuse output                                     *)

let test_qasm_roundtrip_reuse_output () =
  (* QPE reuse output carries measure + reset on the shared wire;
     Grover's prepared form adds conditioned corrections.  Both must
     survive a serialize/parse cycle. *)
  let outputs =
    [
      ( "qpe",
        Dqc.Pipeline.compile ~options:(reuse_options ())
          (Algorithms.Qpe.kitaev ~bits:3 ~phase:(3. /. 8.)) );
      ( "grover",
        Dqc.Pipeline.compile
          ~options:
            (reuse_options ~scheme:(Dqc.Toffoli_scheme.Dynamic_2_shared `Fresh)
               ())
          (Algorithms.Grover.measured ~n:3 ~marked:5) );
    ]
  in
  List.iter
    (fun (name, (out : Dqc.Pipeline.output)) ->
      let c = out.Dqc.Pipeline.circuit in
      let parsed = Qasm.parse ~roles:(Circ.roles c) (Qasm.to_string c) in
      check_bool (name ^ " roundtrip") true (Circ.equal parsed c))
    outputs;
  let qpe = (List.assoc "qpe" outputs).Dqc.Pipeline.circuit in
  check_bool "qpe output has a reset" true
    (List.exists
       (function
         | Instruction.Reset _ -> true
         | Instruction.Unitary _ | Instruction.Measure _
         | Instruction.Conditioned _ | Instruction.Barrier _ ->
             false)
       (Circ.instructions qpe));
  (* Grover's fresh-ancilla chains are uncomputed to |0> before every
     rehosting, and the relational rows prove it: prune_resets (via
     Lint.Deadness.provably_zero) now drops every inserted reset. *)
  let grover = (List.assoc "grover" outputs).Dqc.Pipeline.circuit in
  check_bool "grover resets all provably redundant" false
    (List.exists
       (function
         | Instruction.Reset _ -> true
         | Instruction.Unitary _ | Instruction.Measure _
         | Instruction.Conditioned _ | Instruction.Barrier _ ->
             false)
       (Circ.instructions grover))

let test_qasm_roundtrip_conditioned_reuse () =
  (* a feed-forward circuit whose conditioned gate re-hosts a retired
     wire: serialization must carry measure, reset and the classical
     condition through a parse cycle unchanged *)
  let roles = [| Circ.Data; Circ.Data |] in
  let b = Circ.Builder.make ~roles ~num_bits:2 () in
  Circ.Builder.h b 0;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.conditioned b ~bit:0 Gate.X 1;
  Circ.Builder.measure b ~qubit:1 ~bit:1;
  let c = Circ.Builder.build b in
  let rewired, report = Dqc.Reuse.rewire c in
  check_int "1 wire" 1 (Circ.num_qubits rewired);
  check_int "one reset" 1 report.Dqc.Reuse.resets_inserted;
  check_bool "conditioned survives rewiring" true
    (List.exists
       (function
         | Instruction.Conditioned _ -> true
         | Instruction.Unitary _ | Instruction.Measure _
         | Instruction.Reset _ | Instruction.Barrier _ ->
             false)
       (Circ.instructions rewired));
  let parsed = Qasm.parse ~roles:(Circ.roles rewired) (Qasm.to_string rewired) in
  check_bool "roundtrip" true (Circ.equal parsed rewired);
  (* and the rewiring is a provable channel equality *)
  check_bool "certified" true
    (Verify.Certify.is_proved (Verify.Certify.check_channel c rewired))

(* ------------------------------------------------------------------ *)
(* Optimizer: diagnostics/rewrite agreement and qcheck properties      *)

(* The shared deadness queries mean the linter's diagnoses and the
   optimizer's rewrites must agree wherever their criteria coincide.
   These corpus circuits are built so they do: every wire is measured,
   no unitary precedes a reset on its own wire after its last read, and
   no conditioned gate is dead — so [dead-gate] diagnostics = dce
   [gates_removed] and [redundant-reset] diagnostics = dce
   [resets_removed]. *)
let counts_corpus =
  [
    (* two dead tail gates, one per wire *)
    ( "dead-tails",
      Circ.create ~roles:[| Circ.Data; Circ.Data |] ~num_bits:2
        [
          Instruction.Unitary (Instruction.app Gate.H 0);
          Instruction.Measure { qubit = 0; bit = 0 };
          Instruction.Unitary (Instruction.app Gate.X 0);
          Instruction.Unitary (Instruction.app Gate.H 1);
          Instruction.Measure { qubit = 1; bit = 1 };
          Instruction.Unitary (Instruction.app Gate.Z 1);
        ] );
    (* a reset of a provably-|0⟩ wire, still observed afterwards *)
    ( "redundant-reset",
      Circ.create ~roles:[| Circ.Data |] ~num_bits:2
        [
          Instruction.Unitary (Instruction.app Gate.X 0);
          Instruction.Unitary (Instruction.app Gate.X 0);
          Instruction.Measure { qubit = 0; bit = 0 };
          Instruction.Reset 0;
          Instruction.Unitary (Instruction.app Gate.H 0);
          Instruction.Measure { qubit = 0; bit = 1 };
        ] );
    (* both at once: the redundant reset precedes the dead tail gate,
       so the forward rewrite is applied before the backward sweep's
       first removal dirties the trace *)
    ( "mixed",
      Circ.create ~roles:[| Circ.Data; Circ.Data |] ~num_bits:3
        [
          Instruction.Unitary (Instruction.app Gate.X 0);
          Instruction.Unitary (Instruction.app Gate.X 0);
          Instruction.Measure { qubit = 0; bit = 0 };
          Instruction.Reset 0;
          Instruction.Unitary (Instruction.app Gate.H 0);
          Instruction.Measure { qubit = 0; bit = 1 };
          Instruction.Unitary (Instruction.app Gate.H 1);
          Instruction.Measure { qubit = 1; bit = 2 };
          Instruction.Unitary (Instruction.app Gate.X 1);
        ] );
  ]

let test_diagnostics_match_rewrites () =
  List.iter
    (fun (name, c) ->
      let report = Lint.run ~passes:(Lint.default_passes) c in
      let count pass =
        List.length
          (List.filter
             (fun (d : Lint.Diagnostic.t) -> d.Lint.Diagnostic.pass = pass)
             report.Lint.diagnostics)
      in
      let rw = Dqc.Optimize.dce c in
      check_bool (name ^ " dce proved") false rw.Dqc.Optimize.reverted;
      check_int
        (name ^ ": dead-gate diagnostics = gates removed")
        (count "dead-gate")
        rw.Dqc.Optimize.stats.Dqc.Optimize.gates_removed;
      check_int
        (name ^ ": no uncomputes in this corpus")
        0 rw.Dqc.Optimize.stats.Dqc.Optimize.uncomputes_removed;
      check_int
        (name ^ ": redundant-reset diagnostics = resets removed")
        (count "redundant-reset")
        rw.Dqc.Optimize.stats.Dqc.Optimize.resets_removed)
    counts_corpus

(* random measured circuits over 3 qubits / 3 bits exercising every
   rewrite family: constant and superposed measures, resets, feed-
   forward conditions, CX chains *)
let random_measured_gen =
  QCheck2.Gen.(
    list_size (int_range 1 10)
      (oneof
         [
           map2
             (fun g q -> Instruction.Unitary (Instruction.app g q))
             (oneofl Gate.[ H; X; Z; S ])
             (int_range 0 2);
           map2
             (fun c t ->
               let t = if c = t then (t + 1) mod 3 else t in
               Instruction.Unitary (Instruction.app ~controls:[ c ] Gate.X t))
             (int_range 0 2) (int_range 0 2);
           map2
             (fun q b -> Instruction.Measure { qubit = q; bit = b })
             (int_range 0 2) (int_range 0 2);
           map (fun q -> Instruction.Reset q) (int_range 0 2);
           map2
             (fun b q ->
               Instruction.Conditioned
                 (Instruction.cond_bit b true, Instruction.app Gate.X q))
             (int_range 0 2) (int_range 0 2);
         ]))

let roles3 = [| Circ.Data; Circ.Data; Circ.Data |]

(* enough rounds to drain any trailing chain a 10-instruction circuit
   can build, so a second run has provably nothing left to find *)
let opt ?(max_sweeps = 12) c = Dqc.Optimize.run ~max_sweeps c

let prop_optimizer_idempotent =
  QCheck2.Test.make ~name:"optimizer is idempotent" ~count:100
    random_measured_gen
    (fun instrs ->
      let c = Circ.create ~roles:roles3 ~num_bits:3 instrs in
      let first = opt c in
      let second = opt first.Dqc.Optimize.after in
      Circ.equal second.Dqc.Optimize.after second.Dqc.Optimize.before)

let prop_optimizer_monotone =
  QCheck2.Test.make
    ~name:"optimizer never increases gate count or dynamic depth" ~count:100
    random_measured_gen
    (fun instrs ->
      let c = Circ.create ~roles:roles3 ~num_bits:3 instrs in
      let r = opt c in
      Dqc.Optimize.gates_delta r >= 0 && Dqc.Optimize.depth_delta r >= 0)

(* the end-to-end guard: whatever the optimizer did — including
   deleting measurements, which leave the certifier's shared-bit
   vocabulary — the exact distribution over the full classical
   register is unchanged, and every accepted rewrite carried a Proved
   certificate (reverts are allowed, sampling never happens) *)
let prop_optimizer_preserves_register =
  QCheck2.Test.make
    ~name:"optimized circuits keep the exact register distribution"
    ~count:200 random_measured_gen
    (fun instrs ->
      let c = Circ.create ~roles:roles3 ~num_bits:3 instrs in
      let r = opt c in
      let before = Sim.Exact.register_distribution r.Dqc.Optimize.before in
      let after = Sim.Exact.register_distribution r.Dqc.Optimize.after in
      Sim.Dist.approx_equal ~eps:1e-9 before after)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "passes"
    [
      ( "registry",
        [
          Alcotest.test_case "builtin contents" `Quick test_registry_contents;
          Alcotest.test_case "schedules" `Quick test_schedule_names;
          Alcotest.test_case "invalid options" `Quick test_invalid_options;
        ] );
      ( "manager",
        [
          Alcotest.test_case "deterministic ordering" `Quick
            test_pass_ordering_deterministic;
          Alcotest.test_case "per-pass counters" `Quick test_per_pass_counters;
          Alcotest.test_case "short-circuit on failure" `Quick
            test_short_circuit_on_failure;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "simon" `Quick test_reuse_simon;
          Alcotest.test_case "qpe" `Quick test_reuse_qpe;
          Alcotest.test_case "grover" `Quick test_reuse_grover;
          Alcotest.test_case "no-op when all qubits stay live" `Quick
            test_reuse_noop_when_all_live;
          Alcotest.test_case "BV data chains onto one wire" `Quick
            test_reuse_chains_bv_data;
          Alcotest.test_case "prune provably-zero reset" `Quick
            test_prune_provably_zero_reset;
          Alcotest.test_case "qasm roundtrip" `Quick
            test_qasm_roundtrip_reuse_output;
          Alcotest.test_case "qasm roundtrip (conditioned)" `Quick
            test_qasm_roundtrip_conditioned_reuse;
        ] );
      ( "optimize",
        Alcotest.test_case "lint diagnostics match dce rewrites" `Quick
          test_diagnostics_match_rewrites
        :: List.map QCheck_alcotest.to_alcotest
             [
               prop_optimizer_idempotent;
               prop_optimizer_monotone;
               prop_optimizer_preserves_register;
             ] );
    ]
